//! Incremental energy evaluation for annealing.
//!
//! Samplers in `qlrb-anneal` drive models exclusively through the
//! [`Evaluator`] trait: a mutable cursor that owns a binary state, answers
//! "what would flipping bit `v` cost" in better-than-full-reevaluation time,
//! and applies flips while keeping internal caches coherent.
//!
//! [`CqmEvaluator`] exploits the LRP structure: the objective is a sum of
//! squares of *linear* expressions and every constraint is linear, so it
//! caches one running sum per expression. A bit of the LRP CQM occurs in at
//! most four expressions (its process-load objective term, its conservation
//! constraint, its capacity constraint, and the global migration budget), so
//! flip deltas cost O(4) regardless of problem size.
//!
//! # Memory layout
//!
//! [`CompiledCqm`] stores both adjacency directions as CSR (compressed
//! sparse row) parallel arrays rather than nested `Vec<Vec<..>>`:
//!
//! * variable → expression (`inc_*`), walked by [`Evaluator::flip_delta`];
//!   entries for one variable are contiguous and expression-ascending, so
//!   the delta loop streams three flat arrays instead of chasing one heap
//!   allocation per variable;
//! * expression → variable (`mem_*`), the transpose, walked by the
//!   flip-delta cache to find which *other* variables' deltas an accepted
//!   flip perturbs.
//!
//! # Flip-delta cache
//!
//! Samplers that scan all candidate deltas every iteration (tabu search,
//! steepest-descent polish) can opt into an incrementally maintained cache
//! via [`Evaluator::enable_delta_cache`]. After an accepted `flip(v)` the
//! cache applies, for every expression `e ∋ v` whose sum moved `os → ns`
//! and every other member `u` of `e`, the second-difference correction
//!
//! ```text
//! corr = E(ns + dc) − E(ns) − E(os + dc) + E(os),   dc = dir_u · c_u
//! ```
//!
//! which is exactly how much `u`'s own flip delta changed. For purely
//! quadratic penalties (objective squares, `Eq` constraints) this collapses
//! to the closed form `2·w·dc·(ns − os)`; for piecewise `Le` penalties the
//! cache short-circuits to `0` when all four probe points sit in the flat
//! region, uses the closed quadratic form when all four sit past the knee,
//! and only falls back to four penalty evaluations when the flip straddles
//! it. [`Evaluator::resync`] rebuilds the cache from scratch, so the same
//! periodic resync that clears energy drift also clears cache drift.
//!
//! The cache is *opt-in* because maintaining it costs O(Σ_{e∋v} |e|) per
//! accepted flip — the LRP migration-budget constraint touches every
//! migration bit, so an accepted flip updates O(n) cached deltas. That is a
//! bargain for samplers that read all n deltas per iteration anyway (tabu
//! turns an O(n · nnz) scan into an O(n) array read) and a pessimization
//! for single-candidate samplers like SA at high acceptance rates, which
//! should leave it off and keep using on-demand [`Evaluator::flip_delta`].

use std::sync::Arc;

use crate::cqm::{violation_of, Cqm, Sense};
use crate::penalty::{PenaltyConfig, PenaltyStyle};

/// A mutable annealing cursor over a binary energy landscape.
pub trait Evaluator: Send {
    /// Number of binary variables.
    fn num_vars(&self) -> usize;

    /// The current assignment.
    fn state(&self) -> &[u8];

    /// Current total energy (objective + penalties).
    fn energy(&self) -> f64;

    /// Energy change that flipping `var` would cause (state unchanged).
    fn flip_delta(&self, var: usize) -> f64;

    /// Flips `var`, updating caches. Returns the applied delta.
    fn flip(&mut self, var: usize) -> f64;

    /// Flips `var` using a delta the caller already computed (via
    /// [`Evaluator::flip_delta`] or [`Evaluator::cached_deltas`]), skipping
    /// the recomputation that [`Evaluator::flip`] performs. Passing a stale
    /// delta corrupts the tracked energy until the next
    /// [`Evaluator::resync`]. The default implementation ignores the hint.
    fn flip_known(&mut self, var: usize, delta: f64) -> f64 {
        let _ = delta;
        self.flip(var)
    }

    /// Opts into an incrementally maintained per-variable flip-delta cache,
    /// exposed through [`Evaluator::cached_deltas`]. Returns `false` if the
    /// implementation does not support caching (the default).
    fn enable_delta_cache(&mut self) -> bool {
        false
    }

    /// All current flip deltas, if a cache is enabled: `deltas[v]` equals
    /// `flip_delta(v)` up to floating-point drift cleared by `resync`.
    fn cached_deltas(&self) -> Option<&[f64]> {
        None
    }

    /// Variables eligible for flip proposals, ascending. `None` means every
    /// variable is proposable (the default). Implementations whose landscape
    /// contains *dead* bits — presolve-fixed variables keep their index but
    /// lose all incidence, so flipping them never changes the energy —
    /// return the live subset so samplers skip them entirely.
    fn active_vars(&self) -> Option<&[usize]> {
        None
    }

    /// Replaces the state wholesale, rebuilding caches.
    fn set_state(&mut self, state: &[u8]);

    /// Recomputes caches from the raw state, clearing accumulated
    /// floating-point drift. Samplers call this periodically.
    fn resync(&mut self);
}

// ---------------------------------------------------------------------------
// Compiled CQM + evaluator
// ---------------------------------------------------------------------------

/// Which bucket a flattened expression belongs to.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ExprKind {
    /// Objective term `weight·(sum − target)²`.
    Squared { target: f64, weight: f64 },
    /// Constraint with penalty parameters resolved at compile time.
    Constraint { sense: Sense, rhs: f64, weight: f64 },
}

/// A CQM compiled into flat expression tables plus CSR adjacency in both
/// directions, shareable across evaluator clones (annealing reads/replicas).
#[derive(Debug)]
pub struct CompiledCqm {
    num_vars: usize,
    pub(crate) kinds: Vec<ExprKind>,
    pub(crate) consts: Vec<f64>,
    /// CSR variable → expression: entries for `v` live at
    /// `inc_offsets[v]..inc_offsets[v+1]` in `inc_expr`/`inc_coeff`,
    /// expression-ascending.
    inc_offsets: Vec<u32>,
    inc_expr: Vec<u32>,
    inc_coeff: Vec<f64>,
    /// CSR expression → variable (transpose of the above): members of `e`
    /// live at `mem_offsets[e]..mem_offsets[e+1]` in `mem_var`/`mem_coeff`.
    mem_offsets: Vec<u32>,
    mem_var: Vec<u32>,
    mem_coeff: Vec<f64>,
    /// Plain linear objective coefficient per variable.
    pub(crate) linear: Vec<f64>,
    pub(crate) linear_const: f64,
    penalty: PenaltyConfig,
    /// Variables with any expression incidence or a nonzero linear
    /// coefficient, ascending. Presolve-fixed variables are substituted out
    /// of every expression before compilation, so they end up with neither —
    /// flipping them is a guaranteed no-op that samplers should not propose.
    active: Vec<usize>,
}

impl CompiledCqm {
    /// Compiles `cqm` under a penalty configuration.
    ///
    /// With [`PenaltyStyle::Slack`] the model is slack-augmented first, so
    /// the evaluator may report more variables than the CQM; the caller
    /// truncates sampled states to the CQM width before decoding.
    pub fn compile(cqm: &Cqm, penalty: PenaltyConfig) -> Arc<Self> {
        let working;
        let src: &Cqm = if penalty.style == PenaltyStyle::Slack {
            working = crate::penalty::augment_slacks(cqm).cqm;
            &working
        } else {
            cqm
        };
        let num_vars = src.num_vars();
        let num_exprs = src.squared_terms.len() + src.constraints.len();
        let mut kinds = Vec::with_capacity(num_exprs);
        let mut consts = Vec::with_capacity(num_exprs);
        for t in &src.squared_terms {
            kinds.push(ExprKind::Squared {
                target: t.target,
                weight: t.weight,
            });
            consts.push(t.expr.constant_part());
        }
        for c in &src.constraints {
            let weight = match c.sense {
                Sense::Eq => penalty.eq_weight,
                Sense::Le => penalty.le_weight,
            };
            kinds.push(ExprKind::Constraint {
                sense: c.sense,
                rhs: c.rhs,
                weight,
            });
            consts.push(c.expr.constant_part());
        }

        // Expression terms in expression-id order; the expr→var CSR is just
        // the concatenation, and a counting pass over it yields the var→expr
        // transpose with per-variable entries expression-ascending.
        let expr_terms = |e: usize| -> &[(crate::expr::Var, f64)] {
            if e < src.squared_terms.len() {
                src.squared_terms[e].expr.terms()
            } else {
                src.constraints[e - src.squared_terms.len()].expr.terms()
            }
        };
        let nnz: usize = (0..num_exprs).map(|e| expr_terms(e).len()).sum();

        let mut mem_offsets = Vec::with_capacity(num_exprs + 1);
        let mut mem_var = Vec::with_capacity(nnz);
        let mut mem_coeff = Vec::with_capacity(nnz);
        mem_offsets.push(0u32);
        let mut counts = vec![0u32; num_vars];
        for e in 0..num_exprs {
            for &(v, c) in expr_terms(e) {
                mem_var.push(v.0);
                mem_coeff.push(c);
                counts[v.index()] += 1;
            }
            mem_offsets.push(mem_var.len() as u32);
        }

        let mut inc_offsets = Vec::with_capacity(num_vars + 1);
        inc_offsets.push(0u32);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            inc_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = inc_offsets[..num_vars].to_vec();
        let mut inc_expr = vec![0u32; nnz];
        let mut inc_coeff = vec![0.0f64; nnz];
        for e in 0..num_exprs {
            for &(v, c) in expr_terms(e) {
                let slot = cursor[v.index()] as usize;
                inc_expr[slot] = e as u32;
                inc_coeff[slot] = c;
                cursor[v.index()] += 1;
            }
        }

        let mut linear = vec![0.0; num_vars];
        for &(v, c) in src.linear_objective.terms() {
            linear[v.index()] += c;
        }
        let active = (0..num_vars)
            .filter(|&v| inc_offsets[v + 1] > inc_offsets[v] || linear[v] != 0.0)
            .collect();
        Arc::new(Self {
            num_vars,
            kinds,
            consts,
            inc_offsets,
            inc_expr,
            inc_coeff,
            mem_offsets,
            mem_var,
            mem_coeff,
            linear,
            linear_const: src.linear_objective.constant_part(),
            penalty,
            active,
        })
    }

    /// Number of variables after any slack augmentation.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of compiled expressions (squared terms + constraints).
    pub fn num_exprs(&self) -> usize {
        self.kinds.len()
    }

    /// The penalty configuration this model was compiled with.
    pub fn penalty(&self) -> &PenaltyConfig {
        &self.penalty
    }

    /// Variables that can change the energy when flipped (ascending).
    /// The complement is exactly the presolve-fixed / untouched variables.
    pub fn active_vars(&self) -> &[usize] {
        &self.active
    }

    /// `(expressions, coefficients)` incident to `var`, expr-ascending.
    #[inline]
    pub(crate) fn incident(&self, var: usize) -> (&[u32], &[f64]) {
        let a = self.inc_offsets[var] as usize;
        let b = self.inc_offsets[var + 1] as usize;
        (&self.inc_expr[a..b], &self.inc_coeff[a..b])
    }

    /// `(variables, coefficients)` that make up expression `expr`.
    #[inline]
    pub(crate) fn members(&self, expr: usize) -> (&[u32], &[f64]) {
        let a = self.mem_offsets[expr] as usize;
        let b = self.mem_offsets[expr + 1] as usize;
        (&self.mem_var[a..b], &self.mem_coeff[a..b])
    }

    /// Penalty energy for one constraint sum.
    #[inline]
    pub(crate) fn penalty_energy(&self, kind: &ExprKind, sum: f64) -> f64 {
        match *kind {
            ExprKind::Squared { target, weight } => {
                let d = sum - target;
                weight * d * d
            }
            ExprKind::Constraint { sense, rhs, weight } => match sense {
                Sense::Eq => {
                    let d = sum - rhs;
                    weight * d * d
                }
                Sense::Le => match self.penalty.style {
                    PenaltyStyle::Unbalanced { l1, l2 } => {
                        // The quadratic surrogate of exp(g) grows again for
                        // g far below the bound — a known artifact that, at
                        // auto-scaled weights, turns into a huge reward for
                        // deep slack and swamps the true objective. exp(g)
                        // is flat there, so we flatten too: clamp g at the
                        // parabola's vertex g* = −l1/(2·l2).
                        let vertex = if l2 > 0.0 { -l1 / (2.0 * l2) } else { 0.0 };
                        let g = (sum - rhs).max(vertex);
                        weight * (l1 * g + l2 * g * g)
                    }
                    // Slack-augmented models contain no Le constraints, so
                    // this arm is the ViolationQuadratic (and fallback) path.
                    _ => {
                        let d = (sum - rhs).max(0.0);
                        weight * d * d
                    }
                },
            },
        }
    }

    /// Second difference `E(ns+dc) − E(ns) − E(os+dc) + E(os)` of one
    /// expression's penalty: how much variable `u`'s flip delta (with probe
    /// step `dc = dir_u·c_u`) changes when the expression sum moves
    /// `os → ns`. Affine energy segments contribute nothing, so quadratic
    /// kinds collapse to a closed form and piecewise kinds short-circuit
    /// whenever all four probe points share one segment.
    #[inline]
    pub(crate) fn flip_correction(&self, kind: &ExprKind, os: f64, ns: f64, dc: f64) -> f64 {
        match *kind {
            ExprKind::Squared { weight, .. } => 2.0 * weight * dc * (ns - os),
            ExprKind::Constraint { sense, rhs, weight } => match sense {
                Sense::Eq => 2.0 * weight * dc * (ns - os),
                Sense::Le => {
                    // Knee of the piecewise penalty in sum space: rhs for
                    // ViolationQuadratic, rhs + vertex for the clamped
                    // Unbalanced parabola. Left of it the energy is flat
                    // (corr = 0), right of it purely quadratic.
                    let (knee, quad_w) = match self.penalty.style {
                        PenaltyStyle::Unbalanced { l1, l2 } => {
                            let vertex = if l2 > 0.0 { -l1 / (2.0 * l2) } else { 0.0 };
                            (rhs + vertex, weight * l2)
                        }
                        _ => (rhs, weight),
                    };
                    let lo = os.min(ns).min(os + dc).min(ns + dc);
                    if lo >= knee {
                        return 2.0 * quad_w * dc * (ns - os);
                    }
                    let hi = os.max(ns).max(os + dc).max(ns + dc);
                    if hi <= knee {
                        return 0.0;
                    }
                    self.penalty_energy(kind, ns + dc)
                        - self.penalty_energy(kind, ns)
                        - self.penalty_energy(kind, os + dc)
                        + self.penalty_energy(kind, os)
                }
            },
        }
    }
}

/// Incremental evaluator over a [`CompiledCqm`].
#[derive(Debug, Clone)]
pub struct CqmEvaluator {
    model: Arc<CompiledCqm>,
    state: Vec<u8>,
    sums: Vec<f64>,
    energy: f64,
    /// Per-variable flip deltas, maintained incrementally when
    /// `deltas_live`; empty otherwise.
    deltas: Vec<f64>,
    deltas_live: bool,
}

impl CqmEvaluator {
    /// Creates an evaluator positioned at the all-zeros state.
    pub fn new(model: Arc<CompiledCqm>) -> Self {
        let n = model.num_vars();
        let mut ev = Self {
            model,
            state: vec![0; n],
            sums: Vec::new(),
            energy: 0.0,
            deltas: Vec::new(),
            deltas_live: false,
        };
        ev.resync();
        ev
    }

    /// Creates an evaluator positioned at `state` (must match width; states
    /// narrower than the compiled width — e.g. CQM-width states for a
    /// slack-augmented model — are zero-extended).
    pub fn with_state(model: Arc<CompiledCqm>, state: &[u8]) -> Self {
        let mut ev = Self::new(model);
        ev.set_state(state);
        ev
    }

    /// The compiled model.
    pub fn model(&self) -> &Arc<CompiledCqm> {
        &self.model
    }

    /// Objective value (squared terms + linear part, no penalties) at the
    /// current state.
    pub fn objective(&self) -> f64 {
        let m = &*self.model;
        let mut obj = m.linear_const;
        for (i, x) in self.state.iter().enumerate() {
            if *x != 0 {
                obj += m.linear[i];
            }
        }
        for (kind, &sum) in m.kinds.iter().zip(&self.sums) {
            if let ExprKind::Squared { target, weight } = *kind {
                let d = sum - target;
                obj += weight * d * d;
            }
        }
        obj
    }

    /// Total true violation magnitude (independent of the penalty style).
    pub fn total_violation(&self) -> f64 {
        let m = &*self.model;
        let mut v = 0.0;
        for (kind, &sum) in m.kinds.iter().zip(&self.sums) {
            if let ExprKind::Constraint { sense, rhs, .. } = *kind {
                v += violation_of(sense, sum, rhs);
            }
        }
        v
    }

    /// Whether the current state satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.total_violation() == 0.0
    }

    /// For each constraint (in declaration order), its true violation.
    pub fn constraint_violations(&self) -> Vec<f64> {
        let m = &*self.model;
        m.kinds
            .iter()
            .zip(&self.sums)
            .filter_map(|(kind, &sum)| match *kind {
                ExprKind::Constraint { sense, rhs, .. } => Some(violation_of(sense, sum, rhs)),
                _ => None,
            })
            .collect()
    }

    /// The flip delta restricted to constraint-penalty energy — used by the
    /// feasibility-repair pass to walk downhill in violation space.
    pub fn violation_flip_delta(&self, var: usize) -> f64 {
        let m = &*self.model;
        let x = self.state[var];
        let dir = if x == 0 { 1.0 } else { -1.0 };
        let mut delta = 0.0;
        let (exprs, coeffs) = m.incident(var);
        for (&e, &c) in exprs.iter().zip(coeffs) {
            let e = e as usize;
            if let ExprKind::Constraint { sense, rhs, .. } = m.kinds[e] {
                let old = self.sums[e];
                let new = old + dir * c;
                delta += violation_of(sense, new, rhs) - violation_of(sense, old, rhs);
            }
        }
        delta
    }

    /// Rebuilds every cached delta from scratch (O(nnz)).
    fn rebuild_deltas(&mut self) {
        for v in 0..self.model.num_vars() {
            let d = self.flip_delta(v);
            self.deltas[v] = d;
        }
    }

    /// Applies a flip whose delta is already known, updating sums, energy,
    /// and (when live) the delta cache.
    fn apply_flip(&mut self, var: usize, delta: f64) {
        let m = Arc::clone(&self.model);
        let dir = if self.state[var] == 0 { 1.0 } else { -1.0 };
        let (exprs, coeffs) = m.incident(var);
        if self.deltas_live {
            for (&e, &c) in exprs.iter().zip(coeffs) {
                let ei = e as usize;
                let os = self.sums[ei];
                let ns = os + dir * c;
                let kind = &m.kinds[ei];
                let (vars_e, coeffs_e) = m.members(ei);
                for (&u, &cu) in vars_e.iter().zip(coeffs_e) {
                    let u = u as usize;
                    if u == var {
                        continue;
                    }
                    let du = if self.state[u] == 0 { 1.0 } else { -1.0 };
                    self.deltas[u] += m.flip_correction(kind, os, ns, du * cu);
                }
                self.sums[ei] = ns;
            }
            self.deltas[var] = -delta;
        } else {
            for (&e, &c) in exprs.iter().zip(coeffs) {
                self.sums[e as usize] += dir * c;
            }
        }
        self.state[var] ^= 1;
        self.energy += delta;
    }
}

impl Evaluator for CqmEvaluator {
    fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    fn state(&self) -> &[u8] {
        &self.state
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn flip_delta(&self, var: usize) -> f64 {
        let m = &*self.model;
        let x = self.state[var];
        let dir = if x == 0 { 1.0 } else { -1.0 };
        let mut delta = dir * m.linear[var];
        let (exprs, coeffs) = m.incident(var);
        for (&e, &c) in exprs.iter().zip(coeffs) {
            let e = e as usize;
            let old = self.sums[e];
            let new = old + dir * c;
            let kind = &m.kinds[e];
            delta += m.penalty_energy(kind, new) - m.penalty_energy(kind, old);
        }
        delta
    }

    fn flip(&mut self, var: usize) -> f64 {
        let delta = if self.deltas_live {
            self.deltas[var]
        } else {
            self.flip_delta(var)
        };
        self.apply_flip(var, delta);
        delta
    }

    fn flip_known(&mut self, var: usize, delta: f64) -> f64 {
        self.apply_flip(var, delta);
        delta
    }

    fn enable_delta_cache(&mut self) -> bool {
        if !self.deltas_live {
            self.deltas = vec![0.0; self.model.num_vars()];
            self.deltas_live = true;
            self.rebuild_deltas();
        }
        true
    }

    fn cached_deltas(&self) -> Option<&[f64]> {
        if self.deltas_live {
            Some(&self.deltas)
        } else {
            None
        }
    }

    fn active_vars(&self) -> Option<&[usize]> {
        Some(self.model.active_vars())
    }

    fn set_state(&mut self, state: &[u8]) {
        assert!(
            state.len() <= self.state.len(),
            "state wider than compiled model"
        );
        self.state.fill(0);
        self.state[..state.len()].copy_from_slice(state);
        self.resync();
    }

    fn resync(&mut self) {
        let m = Arc::clone(&self.model);
        self.sums = m.consts.clone();
        for (v, &x) in self.state.iter().enumerate() {
            if x != 0 {
                let (exprs, coeffs) = m.incident(v);
                for (&e, &c) in exprs.iter().zip(coeffs) {
                    self.sums[e as usize] += c;
                }
            }
        }
        let mut e = m.linear_const;
        for (v, &x) in self.state.iter().enumerate() {
            if x != 0 {
                e += m.linear[v];
            }
        }
        for (kind, &sum) in m.kinds.iter().zip(&self.sums) {
            e += m.penalty_energy(kind, sum);
        }
        self.energy = e;
        if self.deltas_live {
            self.rebuild_deltas();
        }
    }
}

// ---------------------------------------------------------------------------
// BQM evaluator
// ---------------------------------------------------------------------------

/// Incremental evaluator over an explicit [`crate::bqm::BinaryQuadraticModel`].
#[derive(Debug, Clone)]
pub struct BqmEvaluator {
    model: Arc<crate::bqm::BinaryQuadraticModel>,
    state: Vec<u8>,
    energy: f64,
}

impl BqmEvaluator {
    /// Creates an evaluator at the all-zeros state.
    pub fn new(model: Arc<crate::bqm::BinaryQuadraticModel>) -> Self {
        let n = model.num_vars();
        let energy = model.offset();
        Self {
            model,
            state: vec![0; n],
            energy,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &Arc<crate::bqm::BinaryQuadraticModel> {
        &self.model
    }
}

impl Evaluator for BqmEvaluator {
    fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    fn state(&self) -> &[u8] {
        &self.state
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn flip_delta(&self, var: usize) -> f64 {
        self.model
            .flip_delta(&self.state, crate::expr::Var(var as u32))
    }

    fn flip(&mut self, var: usize) -> f64 {
        let d = self.flip_delta(var);
        self.state[var] ^= 1;
        self.energy += d;
        d
    }

    fn set_state(&mut self, state: &[u8]) {
        assert!(state.len() <= self.state.len());
        self.state.fill(0);
        self.state[..state.len()].copy_from_slice(state);
        self.resync();
    }

    fn resync(&mut self) {
        self.energy = self.model.energy(&self.state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqm::Cqm;
    use crate::expr::{LinearExpr, Var};
    use proptest::prelude::*;

    fn model(style: PenaltyStyle) -> Arc<CompiledCqm> {
        // minimize (x0 + 2·x1 + 3·x2 − 3)²  s.t.  x0 + x1 + x2 ≤ 2, x0 = 1
        let mut cqm = Cqm::new(3);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0)
            .add_term(Var(1), 2.0)
            .add_term(Var(2), 3.0);
        cqm.add_squared_term(obj, 3.0, 1.0);
        let mut cap = LinearExpr::new();
        cap.add_term(Var(0), 1.0)
            .add_term(Var(1), 1.0)
            .add_term(Var(2), 1.0);
        cqm.add_constraint(cap, Sense::Le, 2.0, "cap");
        let mut fix = LinearExpr::new();
        fix.add_term(Var(0), 1.0);
        cqm.add_constraint(fix, Sense::Eq, 1.0, "fix");
        CompiledCqm::compile(&cqm, PenaltyConfig::uniform(25.0, style))
    }

    fn styles() -> [PenaltyStyle; 3] {
        [
            PenaltyStyle::ViolationQuadratic,
            PenaltyStyle::Unbalanced {
                l1: 0.96,
                l2: 0.0331,
            },
            PenaltyStyle::Slack,
        ]
    }

    #[test]
    fn incremental_matches_resync_quadratic() {
        let m = model(PenaltyStyle::ViolationQuadratic);
        let mut ev = CqmEvaluator::new(m);
        let flips = [0, 1, 2, 1, 0, 2, 2, 1];
        for &v in &flips {
            let before = ev.energy();
            let delta = ev.flip(v);
            assert!((ev.energy() - (before + delta)).abs() < 1e-9);
            let tracked = ev.energy();
            ev.resync();
            assert!(
                (ev.energy() - tracked).abs() < 1e-9,
                "drift after flip {v}: {} vs {}",
                tracked,
                ev.energy()
            );
        }
    }

    #[test]
    fn incremental_matches_resync_unbalanced() {
        let m = model(PenaltyStyle::Unbalanced {
            l1: 0.96,
            l2: 0.0331,
        });
        let mut ev = CqmEvaluator::new(m);
        for &v in &[2, 2, 0, 1, 2, 0] {
            let tracked = ev.energy() + ev.flip_delta(v);
            ev.flip(v);
            ev.resync();
            assert!((ev.energy() - tracked).abs() < 1e-9);
        }
    }

    #[test]
    fn slack_compile_widens_state() {
        let m = model(PenaltyStyle::Slack);
        assert!(m.num_vars() > 3);
        let mut ev = CqmEvaluator::new(m);
        // Narrow state is accepted and zero-extended.
        ev.set_state(&[1, 0, 0]);
        assert_eq!(&ev.state()[..3], &[1, 0, 0]);
    }

    #[test]
    fn objective_and_violation_split() {
        let m = model(PenaltyStyle::ViolationQuadratic);
        let mut ev = CqmEvaluator::new(m);
        ev.set_state(&[1, 1, 0]); // obj (1+2-3)²=0, feasible
        assert_eq!(ev.objective(), 0.0);
        assert_eq!(ev.total_violation(), 0.0);
        assert!(ev.is_feasible());
        ev.set_state(&[1, 1, 1]); // cap violated by 1, obj (6-3)²=9
        assert_eq!(ev.objective(), 9.0);
        assert_eq!(ev.total_violation(), 1.0);
        assert!(!ev.is_feasible());
        assert_eq!(ev.constraint_violations(), vec![1.0, 0.0]);
    }

    #[test]
    fn violation_flip_delta_guides_repair() {
        let m = model(PenaltyStyle::ViolationQuadratic);
        let ev = CqmEvaluator::with_state(m, &[1, 1, 1]);
        // Flipping x1 or x2 off reduces the cap violation by 1.
        assert_eq!(ev.violation_flip_delta(1), -1.0);
        assert_eq!(ev.violation_flip_delta(2), -1.0);
        // Flipping x0 off fixes cap but breaks fix_x0: net 0.
        assert_eq!(ev.violation_flip_delta(0), 0.0);
    }

    #[test]
    fn active_vars_excludes_dead_bits() {
        // Var 1 appears in no expression and has no linear coefficient —
        // exactly the shape presolve substitution leaves behind.
        let mut cqm = Cqm::new(3);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0).add_term(Var(2), 2.0);
        cqm.add_squared_term(obj, 1.0, 1.0);
        let m = CompiledCqm::compile(
            &cqm,
            PenaltyConfig::uniform(1.0, PenaltyStyle::ViolationQuadratic),
        );
        assert_eq!(m.active_vars(), &[0, 2]);
        let ev = CqmEvaluator::new(Arc::clone(&m));
        assert_eq!(ev.active_vars(), Some(&[0usize, 2][..]));
        // Dead bits really are energy no-ops.
        assert_eq!(ev.flip_delta(1), 0.0);
        // The BQM evaluator keeps the default "all proposable".
        let bqm = crate::bqm::BinaryQuadraticModel::new(2);
        let bev = BqmEvaluator::new(Arc::new(bqm));
        assert!(Evaluator::active_vars(&bev).is_none());
    }

    #[test]
    fn bqm_evaluator_tracks_energy() {
        let mut bqm = crate::bqm::BinaryQuadraticModel::new(2);
        bqm.add_linear(Var(0), 1.0);
        bqm.add_quadratic(Var(0), Var(1), -3.0);
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        ev.flip(0);
        ev.flip(1);
        let tracked = ev.energy();
        ev.resync();
        assert!((tracked - ev.energy()).abs() < 1e-12);
        assert_eq!(ev.energy(), 1.0 - 3.0);
    }

    #[test]
    fn bqm_evaluator_has_no_delta_cache() {
        let mut bqm = crate::bqm::BinaryQuadraticModel::new(2);
        bqm.add_linear(Var(0), 1.0);
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        assert!(!ev.enable_delta_cache());
        assert!(ev.cached_deltas().is_none());
        // flip_known falls back to a plain flip.
        let d = ev.flip_delta(0);
        assert_eq!(ev.flip_known(0, d), d);
        assert_eq!(ev.state(), &[1, 0]);
    }

    #[test]
    fn flip_known_matches_flip() {
        for style in styles() {
            let m = model(style);
            let mut a = CqmEvaluator::new(Arc::clone(&m));
            let mut b = CqmEvaluator::new(Arc::clone(&m));
            for &v in &[0, 2, 1, 2, 0, 1, 2] {
                let da = a.flip(v);
                let db = b.flip_known(v, b.flip_delta(v));
                assert_eq!(da, db, "style {style:?} var {v}");
                assert_eq!(a.state(), b.state());
                assert!((a.energy() - b.energy()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn delta_cache_tracks_flips() {
        for style in styles() {
            let m = model(style);
            let n = m.num_vars();
            let mut ev = CqmEvaluator::new(Arc::clone(&m));
            assert!(ev.enable_delta_cache());
            for &v in &[0, 1, 2, 2, 1, 0, 2, 1, 1, 0] {
                ev.flip(v % n);
                let fresh = CqmEvaluator::with_state(Arc::clone(&m), ev.state());
                let cached = ev.cached_deltas().expect("cache enabled");
                for (u, &got) in cached.iter().enumerate() {
                    let want = fresh.flip_delta(u);
                    assert!(
                        (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                        "style {style:?} var {u}: cached {got} vs fresh {want}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn random_walk_never_drifts(flips in proptest::collection::vec(0usize..3, 1..200)) {
            let m = model(PenaltyStyle::ViolationQuadratic);
            let mut ev = CqmEvaluator::new(m);
            for &v in &flips {
                ev.flip(v);
            }
            let tracked = ev.energy();
            ev.resync();
            prop_assert!((tracked - ev.energy()).abs() < 1e-6);
        }

        #[test]
        fn delta_cache_matches_fresh_evaluator(
            flips in proptest::collection::vec(0usize..64, 1..120),
            style_idx in 0usize..3,
        ) {
            let style = styles()[style_idx];
            let m = model(style);
            let n = m.num_vars();
            let mut ev = CqmEvaluator::new(Arc::clone(&m));
            ev.enable_delta_cache();
            for &v in &flips {
                ev.flip(v % n);
            }
            let fresh = CqmEvaluator::with_state(Arc::clone(&m), ev.state());
            let cached = ev.cached_deltas().expect("cache enabled");
            for (u, &got) in cached.iter().enumerate() {
                let want = fresh.flip_delta(u);
                prop_assert!(
                    (got - want).abs() <= 1e-6 * (1.0 + want.abs()),
                    "style {:?} var {}: cached {} vs fresh {}",
                    style, u, got, want
                );
            }
        }
    }
}
