//! Incremental energy evaluation for annealing.
//!
//! Samplers in `qlrb-anneal` drive models exclusively through the
//! [`Evaluator`] trait: a mutable cursor that owns a binary state, answers
//! "what would flipping bit `v` cost" in better-than-full-reevaluation time,
//! and applies flips while keeping internal caches coherent.
//!
//! [`CqmEvaluator`] exploits the LRP structure: the objective is a sum of
//! squares of *linear* expressions and every constraint is linear, so it
//! caches one running sum per expression. A bit of the LRP CQM occurs in at
//! most four expressions (its process-load objective term, its conservation
//! constraint, its capacity constraint, and the global migration budget), so
//! flip deltas cost O(4) regardless of problem size.

use std::sync::Arc;

use crate::cqm::{violation_of, Cqm, Sense};
use crate::penalty::{PenaltyConfig, PenaltyStyle};

/// A mutable annealing cursor over a binary energy landscape.
pub trait Evaluator: Send {
    /// Number of binary variables.
    fn num_vars(&self) -> usize;

    /// The current assignment.
    fn state(&self) -> &[u8];

    /// Current total energy (objective + penalties).
    fn energy(&self) -> f64;

    /// Energy change that flipping `var` would cause (state unchanged).
    fn flip_delta(&self, var: usize) -> f64;

    /// Flips `var`, updating caches. Returns the applied delta.
    fn flip(&mut self, var: usize) -> f64;

    /// Replaces the state wholesale, rebuilding caches.
    fn set_state(&mut self, state: &[u8]);

    /// Recomputes caches from the raw state, clearing accumulated
    /// floating-point drift. Samplers call this periodically.
    fn resync(&mut self);
}

// ---------------------------------------------------------------------------
// Compiled CQM + evaluator
// ---------------------------------------------------------------------------

/// Which bucket a flattened expression belongs to.
#[derive(Debug, Clone, Copy)]
enum ExprKind {
    /// Objective term `weight·(sum − target)²`.
    Squared { target: f64, weight: f64 },
    /// Constraint with penalty parameters resolved at compile time.
    Constraint { sense: Sense, rhs: f64, weight: f64 },
}

/// A CQM compiled into flat expression tables plus a variable→expression
/// adjacency, shareable across evaluator clones (annealing reads/replicas).
#[derive(Debug)]
pub struct CompiledCqm {
    num_vars: usize,
    kinds: Vec<ExprKind>,
    consts: Vec<f64>,
    /// `incidence[v]` lists `(expr_index, coeff)`.
    incidence: Vec<Vec<(u32, f64)>>,
    /// Plain linear objective coefficient per variable.
    linear: Vec<f64>,
    linear_const: f64,
    penalty: PenaltyConfig,
}

impl CompiledCqm {
    /// Compiles `cqm` under a penalty configuration.
    ///
    /// With [`PenaltyStyle::Slack`] the model is slack-augmented first, so
    /// the evaluator may report more variables than the CQM; the caller
    /// truncates sampled states to the CQM width before decoding.
    pub fn compile(cqm: &Cqm, penalty: PenaltyConfig) -> Arc<Self> {
        let working;
        let src: &Cqm = if penalty.style == PenaltyStyle::Slack {
            working = crate::penalty::augment_slacks(cqm).cqm;
            &working
        } else {
            cqm
        };
        let num_vars = src.num_vars();
        let mut kinds = Vec::with_capacity(src.squared_terms.len() + src.constraints.len());
        let mut consts = Vec::with_capacity(kinds.capacity());
        let mut incidence: Vec<Vec<(u32, f64)>> = vec![Vec::new(); num_vars];
        for t in &src.squared_terms {
            let id = kinds.len() as u32;
            kinds.push(ExprKind::Squared {
                target: t.target,
                weight: t.weight,
            });
            consts.push(t.expr.constant_part());
            for &(v, c) in t.expr.terms() {
                incidence[v.index()].push((id, c));
            }
        }
        for c in &src.constraints {
            let id = kinds.len() as u32;
            let weight = match c.sense {
                Sense::Eq => penalty.eq_weight,
                Sense::Le => penalty.le_weight,
            };
            kinds.push(ExprKind::Constraint {
                sense: c.sense,
                rhs: c.rhs,
                weight,
            });
            consts.push(c.expr.constant_part());
            for &(v, co) in c.expr.terms() {
                incidence[v.index()].push((id, co));
            }
        }
        let mut linear = vec![0.0; num_vars];
        for &(v, c) in src.linear_objective.terms() {
            linear[v.index()] += c;
        }
        Arc::new(Self {
            num_vars,
            kinds,
            consts,
            incidence,
            linear,
            linear_const: src.linear_objective.constant_part(),
            penalty,
        })
    }

    /// Number of variables after any slack augmentation.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The penalty configuration this model was compiled with.
    pub fn penalty(&self) -> &PenaltyConfig {
        &self.penalty
    }

    /// Penalty energy for one constraint sum.
    #[inline]
    fn penalty_energy(&self, kind: &ExprKind, sum: f64) -> f64 {
        match *kind {
            ExprKind::Squared { target, weight } => {
                let d = sum - target;
                weight * d * d
            }
            ExprKind::Constraint { sense, rhs, weight } => match sense {
                Sense::Eq => {
                    let d = sum - rhs;
                    weight * d * d
                }
                Sense::Le => match self.penalty.style {
                    PenaltyStyle::Unbalanced { l1, l2 } => {
                        // The quadratic surrogate of exp(g) grows again for
                        // g far below the bound — a known artifact that, at
                        // auto-scaled weights, turns into a huge reward for
                        // deep slack and swamps the true objective. exp(g)
                        // is flat there, so we flatten too: clamp g at the
                        // parabola's vertex g* = −l1/(2·l2).
                        let vertex = if l2 > 0.0 { -l1 / (2.0 * l2) } else { 0.0 };
                        let g = (sum - rhs).max(vertex);
                        weight * (l1 * g + l2 * g * g)
                    }
                    // Slack-augmented models contain no Le constraints, so
                    // this arm is the ViolationQuadratic (and fallback) path.
                    _ => {
                        let d = (sum - rhs).max(0.0);
                        weight * d * d
                    }
                },
            },
        }
    }
}

/// Incremental evaluator over a [`CompiledCqm`].
#[derive(Debug, Clone)]
pub struct CqmEvaluator {
    model: Arc<CompiledCqm>,
    state: Vec<u8>,
    sums: Vec<f64>,
    energy: f64,
}

impl CqmEvaluator {
    /// Creates an evaluator positioned at the all-zeros state.
    pub fn new(model: Arc<CompiledCqm>) -> Self {
        let n = model.num_vars();
        let mut ev = Self {
            model,
            state: vec![0; n],
            sums: Vec::new(),
            energy: 0.0,
        };
        ev.resync();
        ev
    }

    /// Creates an evaluator positioned at `state` (must match width; states
    /// narrower than the compiled width — e.g. CQM-width states for a
    /// slack-augmented model — are zero-extended).
    pub fn with_state(model: Arc<CompiledCqm>, state: &[u8]) -> Self {
        let mut ev = Self::new(model);
        ev.set_state(state);
        ev
    }

    /// The compiled model.
    pub fn model(&self) -> &Arc<CompiledCqm> {
        &self.model
    }

    /// Objective value (squared terms + linear part, no penalties) at the
    /// current state.
    pub fn objective(&self) -> f64 {
        let m = &*self.model;
        let mut obj = m.linear_const;
        for (i, x) in self.state.iter().enumerate() {
            if *x != 0 {
                obj += m.linear[i];
            }
        }
        for (kind, &sum) in m.kinds.iter().zip(&self.sums) {
            if let ExprKind::Squared { target, weight } = *kind {
                let d = sum - target;
                obj += weight * d * d;
            }
        }
        obj
    }

    /// Total true violation magnitude (independent of the penalty style).
    pub fn total_violation(&self) -> f64 {
        let m = &*self.model;
        let mut v = 0.0;
        for (kind, &sum) in m.kinds.iter().zip(&self.sums) {
            if let ExprKind::Constraint { sense, rhs, .. } = *kind {
                v += violation_of(sense, sum, rhs);
            }
        }
        v
    }

    /// Whether the current state satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.total_violation() == 0.0
    }

    /// For each constraint (in declaration order), its true violation.
    pub fn constraint_violations(&self) -> Vec<f64> {
        let m = &*self.model;
        m.kinds
            .iter()
            .zip(&self.sums)
            .filter_map(|(kind, &sum)| match *kind {
                ExprKind::Constraint { sense, rhs, .. } => Some(violation_of(sense, sum, rhs)),
                _ => None,
            })
            .collect()
    }

    /// The flip delta restricted to constraint-penalty energy — used by the
    /// feasibility-repair pass to walk downhill in violation space.
    pub fn violation_flip_delta(&self, var: usize) -> f64 {
        let m = &*self.model;
        let x = self.state[var];
        let dir = if x == 0 { 1.0 } else { -1.0 };
        let mut delta = 0.0;
        for &(e, c) in &m.incidence[var] {
            let e = e as usize;
            if let ExprKind::Constraint { sense, rhs, .. } = m.kinds[e] {
                let old = self.sums[e];
                let new = old + dir * c;
                delta += violation_of(sense, new, rhs) - violation_of(sense, old, rhs);
            }
        }
        delta
    }
}

impl Evaluator for CqmEvaluator {
    fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    fn state(&self) -> &[u8] {
        &self.state
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn flip_delta(&self, var: usize) -> f64 {
        let m = &*self.model;
        let x = self.state[var];
        let dir = if x == 0 { 1.0 } else { -1.0 };
        let mut delta = dir * m.linear[var];
        for &(e, c) in &m.incidence[var] {
            let e = e as usize;
            let old = self.sums[e];
            let new = old + dir * c;
            let kind = &m.kinds[e];
            delta += m.penalty_energy(kind, new) - m.penalty_energy(kind, old);
        }
        delta
    }

    fn flip(&mut self, var: usize) -> f64 {
        let delta = self.flip_delta(var);
        let dir = if self.state[var] == 0 { 1.0 } else { -1.0 };
        for &(e, c) in &self.model.incidence[var] {
            self.sums[e as usize] += dir * c;
        }
        self.state[var] ^= 1;
        self.energy += delta;
        delta
    }

    fn set_state(&mut self, state: &[u8]) {
        assert!(
            state.len() <= self.state.len(),
            "state wider than compiled model"
        );
        self.state.fill(0);
        self.state[..state.len()].copy_from_slice(state);
        self.resync();
    }

    fn resync(&mut self) {
        let m = &*self.model;
        self.sums = m.consts.clone();
        for (v, &x) in self.state.iter().enumerate() {
            if x != 0 {
                for &(e, c) in &m.incidence[v] {
                    self.sums[e as usize] += c;
                }
            }
        }
        let mut e = m.linear_const;
        for (v, &x) in self.state.iter().enumerate() {
            if x != 0 {
                e += m.linear[v];
            }
        }
        for (kind, &sum) in m.kinds.iter().zip(&self.sums) {
            e += m.penalty_energy(kind, sum);
        }
        self.energy = e;
    }
}

// ---------------------------------------------------------------------------
// BQM evaluator
// ---------------------------------------------------------------------------

/// Incremental evaluator over an explicit [`crate::bqm::BinaryQuadraticModel`].
#[derive(Debug, Clone)]
pub struct BqmEvaluator {
    model: Arc<crate::bqm::BinaryQuadraticModel>,
    state: Vec<u8>,
    energy: f64,
}

impl BqmEvaluator {
    /// Creates an evaluator at the all-zeros state.
    pub fn new(model: Arc<crate::bqm::BinaryQuadraticModel>) -> Self {
        let n = model.num_vars();
        let energy = model.offset();
        Self {
            model,
            state: vec![0; n],
            energy,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &Arc<crate::bqm::BinaryQuadraticModel> {
        &self.model
    }
}

impl Evaluator for BqmEvaluator {
    fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    fn state(&self) -> &[u8] {
        &self.state
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn flip_delta(&self, var: usize) -> f64 {
        self.model.flip_delta(&self.state, crate::expr::Var(var as u32))
    }

    fn flip(&mut self, var: usize) -> f64 {
        let d = self.flip_delta(var);
        self.state[var] ^= 1;
        self.energy += d;
        d
    }

    fn set_state(&mut self, state: &[u8]) {
        assert!(state.len() <= self.state.len());
        self.state.fill(0);
        self.state[..state.len()].copy_from_slice(state);
        self.resync();
    }

    fn resync(&mut self) {
        self.energy = self.model.energy(&self.state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqm::Cqm;
    use crate::expr::{LinearExpr, Var};
    use proptest::prelude::*;

    fn model(style: PenaltyStyle) -> Arc<CompiledCqm> {
        // minimize (x0 + 2·x1 + 3·x2 − 3)²  s.t.  x0 + x1 + x2 ≤ 2, x0 = 1
        let mut cqm = Cqm::new(3);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0).add_term(Var(1), 2.0).add_term(Var(2), 3.0);
        cqm.add_squared_term(obj, 3.0, 1.0);
        let mut cap = LinearExpr::new();
        cap.add_term(Var(0), 1.0).add_term(Var(1), 1.0).add_term(Var(2), 1.0);
        cqm.add_constraint(cap, Sense::Le, 2.0, "cap");
        let mut fix = LinearExpr::new();
        fix.add_term(Var(0), 1.0);
        cqm.add_constraint(fix, Sense::Eq, 1.0, "fix");
        CompiledCqm::compile(&cqm, PenaltyConfig::uniform(25.0, style))
    }

    #[test]
    fn incremental_matches_resync_quadratic() {
        let m = model(PenaltyStyle::ViolationQuadratic);
        let mut ev = CqmEvaluator::new(m);
        let flips = [0, 1, 2, 1, 0, 2, 2, 1];
        for &v in &flips {
            let before = ev.energy();
            let delta = ev.flip(v);
            assert!((ev.energy() - (before + delta)).abs() < 1e-9);
            let tracked = ev.energy();
            ev.resync();
            assert!(
                (ev.energy() - tracked).abs() < 1e-9,
                "drift after flip {v}: {} vs {}",
                tracked,
                ev.energy()
            );
        }
    }

    #[test]
    fn incremental_matches_resync_unbalanced() {
        let m = model(PenaltyStyle::Unbalanced { l1: 0.96, l2: 0.0331 });
        let mut ev = CqmEvaluator::new(m);
        for &v in &[2, 2, 0, 1, 2, 0] {
            let tracked = ev.energy() + ev.flip_delta(v);
            ev.flip(v);
            ev.resync();
            assert!((ev.energy() - tracked).abs() < 1e-9);
        }
    }

    #[test]
    fn slack_compile_widens_state() {
        let m = model(PenaltyStyle::Slack);
        assert!(m.num_vars() > 3);
        let mut ev = CqmEvaluator::new(m);
        // Narrow state is accepted and zero-extended.
        ev.set_state(&[1, 0, 0]);
        assert_eq!(&ev.state()[..3], &[1, 0, 0]);
    }

    #[test]
    fn objective_and_violation_split() {
        let m = model(PenaltyStyle::ViolationQuadratic);
        let mut ev = CqmEvaluator::new(m);
        ev.set_state(&[1, 1, 0]); // obj (1+2-3)²=0, feasible
        assert_eq!(ev.objective(), 0.0);
        assert_eq!(ev.total_violation(), 0.0);
        assert!(ev.is_feasible());
        ev.set_state(&[1, 1, 1]); // cap violated by 1, obj (6-3)²=9
        assert_eq!(ev.objective(), 9.0);
        assert_eq!(ev.total_violation(), 1.0);
        assert!(!ev.is_feasible());
        assert_eq!(ev.constraint_violations(), vec![1.0, 0.0]);
    }

    #[test]
    fn violation_flip_delta_guides_repair() {
        let m = model(PenaltyStyle::ViolationQuadratic);
        let ev = CqmEvaluator::with_state(m, &[1, 1, 1]);
        // Flipping x1 or x2 off reduces the cap violation by 1.
        assert_eq!(ev.violation_flip_delta(1), -1.0);
        assert_eq!(ev.violation_flip_delta(2), -1.0);
        // Flipping x0 off fixes cap but breaks fix_x0: net 0.
        assert_eq!(ev.violation_flip_delta(0), 0.0);
    }

    #[test]
    fn bqm_evaluator_tracks_energy() {
        let mut bqm = crate::bqm::BinaryQuadraticModel::new(2);
        bqm.add_linear(Var(0), 1.0);
        bqm.add_quadratic(Var(0), Var(1), -3.0);
        let mut ev = BqmEvaluator::new(Arc::new(bqm));
        ev.flip(0);
        ev.flip(1);
        let tracked = ev.energy();
        ev.resync();
        assert!((tracked - ev.energy()).abs() < 1e-12);
        assert_eq!(ev.energy(), 1.0 - 3.0);
    }

    proptest! {
        #[test]
        fn random_walk_never_drifts(flips in proptest::collection::vec(0usize..3, 1..200)) {
            let m = model(PenaltyStyle::ViolationQuadratic);
            let mut ev = CqmEvaluator::new(m);
            for &v in &flips {
                ev.flip(v);
            }
            let tracked = ev.energy();
            ev.resync();
            prop_assert!((tracked - ev.energy()).abs() < 1e-6);
        }
    }
}
