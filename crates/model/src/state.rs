//! Small helpers for binary assignment vectors.
//!
//! States are plain `Vec<u8>` with values 0/1: byte-per-bit wastes memory
//! versus a bitset, but flip-heavy annealing kernels index single variables
//! constantly and the byte form avoids shift/mask work on the hot path.

/// Asserts (in debug builds) that a state is strictly 0/1-valued.
#[inline]
pub fn debug_check_binary(state: &[u8]) {
    debug_assert!(
        state.iter().all(|&b| b <= 1),
        "state contains non-binary values"
    );
}

/// Hamming distance between two equal-length states.
///
/// # Panics
/// Panics if the lengths differ.
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance needs equal widths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Number of set bits.
pub fn popcount(state: &[u8]) -> usize {
    state.iter().filter(|&&b| b != 0).count()
}

/// Converts 0/1 bytes to ±1 spins (`0 → −1`, `1 → +1`).
pub fn to_spins(state: &[u8]) -> Vec<i8> {
    state.iter().map(|&b| if b != 0 { 1 } else { -1 }).collect()
}

/// Converts ±1 spins back to 0/1 bytes.
pub fn from_spins(spins: &[i8]) -> Vec<u8> {
    spins.iter().map(|&s| u8::from(s > 0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_and_popcount() {
        assert_eq!(hamming(&[0, 1, 1, 0], &[1, 1, 0, 0]), 2);
        assert_eq!(popcount(&[0, 1, 1, 0, 1]), 3);
    }

    #[test]
    fn spin_roundtrip() {
        let s = [0u8, 1, 1, 0, 1];
        assert_eq!(from_spins(&to_spins(&s)), s.to_vec());
        assert_eq!(to_spins(&s), vec![-1, 1, 1, -1, 1]);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn hamming_length_mismatch_panics() {
        hamming(&[0], &[0, 1]);
    }
}
