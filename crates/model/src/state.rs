//! Small helpers for binary assignment vectors.
//!
//! States are plain `Vec<u8>` with values 0/1: byte-per-bit wastes memory
//! versus a bitset, but flip-heavy annealing kernels index single variables
//! constantly and the byte form avoids shift/mask work on the hot path.

/// Asserts (in debug builds) that a state is strictly 0/1-valued.
#[inline]
pub fn debug_check_binary(state: &[u8]) {
    debug_assert!(
        state.iter().all(|&b| b <= 1),
        "state contains non-binary values"
    );
}

/// Reads up to 8 bytes of a 0/1 state as one little-endian `u64`, so eight
/// variables can be compared or counted with a single word operation. The
/// same byte→word packing underlies the lane bitsets in [`crate::batch`].
#[inline]
fn load_word(chunk: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(w)
}

/// Hamming distance between two equal-length states.
///
/// Word-at-a-time: XOR of two 0/1 byte words leaves one bit per differing
/// byte, so summing the bytes of the XOR word (a single multiply, since
/// every byte is ≤ 1 and a chunk holds ≤ 8 of them) counts mismatches
/// eight bytes per step.
///
/// # Panics
/// Panics if the lengths differ.
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance needs equal widths");
    debug_check_binary(a);
    debug_check_binary(b);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    let mut count = 0u64;
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        let x = load_word(ca) ^ load_word(cb);
        count += x.wrapping_mul(0x0101_0101_0101_0101) >> 56;
    }
    let x = load_word(ac.remainder()) ^ load_word(bc.remainder());
    count += x.wrapping_mul(0x0101_0101_0101_0101) >> 56;
    count as usize
}

/// Number of set bits, summed eight 0/1 bytes per word step.
pub fn popcount(state: &[u8]) -> usize {
    debug_check_binary(state);
    let mut chunks = state.chunks_exact(8);
    let mut count = 0u64;
    for c in chunks.by_ref() {
        count += load_word(c).wrapping_mul(0x0101_0101_0101_0101) >> 56;
    }
    count += load_word(chunks.remainder()).wrapping_mul(0x0101_0101_0101_0101) >> 56;
    count as usize
}

/// Converts 0/1 bytes to ±1 spins (`0 → −1`, `1 → +1`).
pub fn to_spins(state: &[u8]) -> Vec<i8> {
    state.iter().map(|&b| if b != 0 { 1 } else { -1 }).collect()
}

/// Converts ±1 spins back to 0/1 bytes.
pub fn from_spins(spins: &[i8]) -> Vec<u8> {
    spins.iter().map(|&s| u8::from(s > 0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_and_popcount() {
        assert_eq!(hamming(&[0, 1, 1, 0], &[1, 1, 0, 0]), 2);
        assert_eq!(popcount(&[0, 1, 1, 0, 1]), 3);
    }

    #[test]
    fn spin_roundtrip() {
        let s = [0u8, 1, 1, 0, 1];
        assert_eq!(from_spins(&to_spins(&s)), s.to_vec());
        assert_eq!(to_spins(&s), vec![-1, 1, 1, -1, 1]);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn hamming_length_mismatch_panics() {
        hamming(&[0], &[0, 1]);
    }

    #[test]
    fn word_kernels_match_naive_on_odd_lengths() {
        // Lengths straddling the 8-byte word boundary, including the
        // remainder-only and exact-multiple cases.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 65] {
            let a: Vec<u8> = (0..len).map(|i| (i % 3 == 0) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i % 2 == 0) as u8).collect();
            let naive_h = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            let naive_p = a.iter().filter(|&&x| x != 0).count();
            assert_eq!(hamming(&a, &b), naive_h, "hamming len {len}");
            assert_eq!(popcount(&a), naive_p, "popcount len {len}");
        }
    }

    #[test]
    fn word_kernels_all_ones_and_all_zeros_edges() {
        for len in [1usize, 7, 8, 9, 63, 64, 65] {
            let ones = vec![1u8; len];
            let zeros = vec![0u8; len];
            assert_eq!(popcount(&ones), len);
            assert_eq!(popcount(&zeros), 0);
            assert_eq!(hamming(&ones, &zeros), len);
            assert_eq!(hamming(&ones, &ones), 0);
            assert_eq!(hamming(&zeros, &zeros), 0);
        }
    }
}
