#![forbid(unsafe_code)]
//! # qlrb-model — quadratic model substrate
//!
//! This crate provides the optimization-model layer that the paper's
//! constrained quadratic model (CQM) formulations of the Load Rebalancing
//! Problem are built on. It is a from-scratch replacement for the parts of
//! D-Wave's `dimod` stack the paper relies on:
//!
//! * [`bqm::BinaryQuadraticModel`] — an unconstrained binary quadratic model
//!   (QUBO), convertible to an Ising spin model.
//! * [`cqm::Cqm`] — a constrained quadratic model: binary variables, a
//!   quadratic objective expressed as a weighted sum of squared linear
//!   expressions, and linear equality / inequality constraints.
//! * [`encoding::CoefficientSet`] — the paper's non-standard ("bounded
//!   coefficient") binary encoding `C(n)` used to represent integer task
//!   counts `0..=n` with exactly `⌊log₂ n⌋ + 1` bits.
//! * [`penalty`] — CQM → QUBO conversions: quadratic penalties for
//!   equalities, and for inequalities either binary slack variables or the
//!   *unbalanced penalization* scheme (Montañez-Barrera et al., 2024) the
//!   paper cites, which needs no ancillary qubits.
//! * [`eval`] — incremental energy evaluation. Because the LRP objective is a
//!   sum of squares of *linear* expressions, a single bit flip changes only
//!   the handful of expression sums the bit participates in; the evaluators
//!   here exploit that to give O(#incident expressions) flip deltas instead
//!   of O(n²) re-evaluation. This is what makes annealing the paper's
//!   largest configurations (M=64, n=100 → 28 672 binaries) tractable.
//!
//! The samplers living in `qlrb-anneal` only see the [`eval::Evaluator`]
//! trait, so every model in this crate can be annealed interchangeably.

pub mod batch;
pub mod bqm;
pub mod cqm;
pub mod encoding;
pub mod eval;
pub mod expr;
pub mod penalty;
pub mod presolve;
pub mod state;
pub mod subview;

pub use batch::BatchedEvaluator;
pub use bqm::BinaryQuadraticModel;
pub use cqm::{Constraint, Cqm, Sense, SquaredTerm};
pub use encoding::CoefficientSet;
pub use eval::{CqmEvaluator, Evaluator};
pub use expr::{LinearExpr, Var};
pub use penalty::{PenaltyConfig, PenaltyStyle};
pub use presolve::{presolve, Presolve};
pub use subview::SubCqm;
