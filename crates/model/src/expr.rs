//! Variables and sparse linear expressions.

use serde::{Deserialize, Serialize};

/// A binary decision variable, identified by its dense index within a model.
///
/// Variables are plain indices rather than interned names: the LRP
/// formulations create variables in bulk and keep their semantic meaning
/// (`x_{i,j,l}`) in a side table owned by the formulation, which is both
/// faster and keeps this layer application-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A sparse linear expression `Σ coeff·x + constant` over binary variables.
///
/// Terms are kept in insertion order; [`LinearExpr::compress`] merges
/// duplicate variables and drops zero coefficients. Model builders call it
/// once after construction so evaluators can assume one term per variable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearExpr {
    terms: Vec<(Var, f64)>,
    constant: f64,
}

impl LinearExpr {
    /// An empty expression (value 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression with pre-allocated capacity for `cap` terms.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            terms: Vec::with_capacity(cap),
            constant: 0.0,
        }
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        Self {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Adds `coeff · var` to the expression.
    pub fn add_term(&mut self, var: Var, coeff: f64) -> &mut Self {
        if coeff != 0.0 {
            self.terms.push((var, coeff));
        }
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// Adds `scale · other` to this expression.
    pub fn add_scaled(&mut self, other: &LinearExpr, scale: f64) -> &mut Self {
        if scale != 0.0 {
            self.terms
                .extend(other.terms.iter().map(|&(v, c)| (v, c * scale)));
            self.constant += other.constant * scale;
        }
        self
    }

    /// Merges duplicate variables and removes zero coefficients.
    pub fn compress(&mut self) {
        if self.terms.is_empty() {
            return;
        }
        self.terms.sort_unstable_by_key(|&(v, _)| v);
        let mut out: Vec<(Var, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        self.terms = out;
    }

    /// The variable/coefficient terms.
    #[inline]
    pub fn terms(&self) -> &[(Var, f64)] {
        &self.terms
    }

    /// The constant offset.
    #[inline]
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Number of terms (after compression: number of distinct variables).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression for a 0/1 assignment given as a byte slice.
    pub fn value(&self, state: &[u8]) -> f64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            if state[v.index()] != 0 {
                acc += c;
            }
        }
        acc
    }

    /// Smallest value the expression can take over all binary assignments.
    pub fn min_value(&self) -> f64 {
        self.constant + self.terms.iter().map(|&(_, c)| c.min(0.0)).sum::<f64>()
    }

    /// Largest value the expression can take over all binary assignments.
    pub fn max_value(&self) -> f64 {
        self.constant + self.terms.iter().map(|&(_, c)| c.max(0.0)).sum::<f64>()
    }

    /// Largest absolute coefficient (0 for a constant expression).
    pub fn max_abs_coeff(&self) -> f64 {
        self.terms.iter().map(|&(_, c)| c.abs()).fold(0.0, f64::max)
    }
}

impl FromIterator<(Var, f64)> for LinearExpr {
    fn from_iter<T: IntoIterator<Item = (Var, f64)>>(iter: T) -> Self {
        let mut e = LinearExpr::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e.compress();
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_merges_duplicates_and_drops_zeros() {
        let mut e = LinearExpr::new();
        e.add_term(Var(3), 1.5)
            .add_term(Var(1), 2.0)
            .add_term(Var(3), -1.5)
            .add_term(Var(2), 4.0);
        e.compress();
        assert_eq!(e.terms(), &[(Var(1), 2.0), (Var(2), 4.0)]);
    }

    #[test]
    fn value_counts_set_bits() {
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 2.0)
            .add_term(Var(2), 3.0)
            .add_constant(1.0);
        assert_eq!(e.value(&[1, 0, 0]), 3.0);
        assert_eq!(e.value(&[1, 0, 1]), 6.0);
        assert_eq!(e.value(&[0, 1, 0]), 1.0);
    }

    #[test]
    fn min_max_bounds() {
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 2.0)
            .add_term(Var(1), -3.0)
            .add_constant(1.0);
        assert_eq!(e.min_value(), -2.0);
        assert_eq!(e.max_value(), 3.0);
        assert_eq!(e.max_abs_coeff(), 3.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = LinearExpr::new();
        a.add_term(Var(0), 1.0);
        let mut b = LinearExpr::new();
        b.add_term(Var(0), 2.0)
            .add_term(Var(1), 1.0)
            .add_constant(5.0);
        a.add_scaled(&b, 2.0);
        a.compress();
        assert_eq!(a.terms(), &[(Var(0), 5.0), (Var(1), 2.0)]);
        assert_eq!(a.constant_part(), 10.0);
    }

    #[test]
    fn zero_scale_is_noop() {
        let mut a = LinearExpr::new();
        a.add_term(Var(0), 1.0);
        let b = LinearExpr::constant(7.0);
        a.add_scaled(&b, 0.0);
        assert_eq!(a.constant_part(), 0.0);
        assert_eq!(a.len(), 1);
    }
}
