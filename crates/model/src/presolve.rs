//! CQM presolve: bound-based variable fixing and constraint reduction.
//!
//! Hybrid solvers run a classical presolve before sampling; for the LRP
//! CQMs it is surprisingly effective because the migration budget is a
//! single knapsack-style row over *all* off-diagonal bits:
//!
//! * with `k = 0` every migration bit is forced off (the whole model
//!   collapses to the identity);
//! * with small `k`, every bit whose bounded coefficient `c_l > k` can never
//!   be set — e.g. `k1 = 42` on an `n = 50` instance kills the 32-weight
//!   bit of every pair, a sixth of the search space.
//!
//! The pass iterates to fixpoint:
//!
//! 1. **forcing**: in a `≤` constraint, a variable whose activation pushes
//!    the minimum activity above the rhs must be 0; in an `=` constraint the
//!    same test applies in both directions (forced 0 or forced 1).
//! 2. **substitution**: forced variables fold into expression constants.
//! 3. **redundancy**: constraints whose maximum activity already satisfies
//!    them are dropped.
//!
//! Fixed variables keep their indices (no reindexing); they simply lose all
//! incidence, and [`Presolve::apply_to_state`] stamps their values onto any
//! assignment.

use crate::cqm::{Cqm, Sense};
use crate::expr::LinearExpr;

/// The outcome of presolving a CQM.
#[derive(Debug, Clone)]
pub struct Presolve {
    /// The simplified model (same variable count and indices).
    pub cqm: Cqm,
    /// `fixed[v] = Some(bit)` when presolve proved `x_v = bit`.
    pub fixed: Vec<Option<u8>>,
    /// Constraints dropped as always-satisfied.
    pub dropped_constraints: usize,
    /// `true` when a constraint was proven unsatisfiable.
    pub infeasible: bool,
}

impl Presolve {
    /// Number of variables fixed.
    pub fn num_fixed(&self) -> usize {
        self.fixed.iter().filter(|f| f.is_some()).count()
    }

    /// Overwrites fixed positions in `state` with their proven values.
    pub fn apply_to_state(&self, state: &mut [u8]) {
        for (v, f) in self.fixed.iter().enumerate() {
            if let Some(bit) = *f {
                if v < state.len() {
                    state[v] = bit;
                }
            }
        }
    }
}

/// Substitutes fixed variables into an expression, folding them into the
/// constant. Returns the rewritten expression.
fn substitute(expr: &LinearExpr, fixed: &[Option<u8>]) -> LinearExpr {
    let mut out = LinearExpr::with_capacity(expr.len());
    out.add_constant(expr.constant_part());
    for &(v, c) in expr.terms() {
        match fixed[v.index()] {
            Some(1) => {
                out.add_constant(c);
            }
            Some(_) => {}
            None => {
                out.add_term(v, c);
            }
        }
    }
    out.compress();
    out
}

/// Runs presolve to fixpoint (bounded at 16 rounds — each round either
/// fixes a variable or terminates, so the bound is never the limiter in
/// practice).
pub fn presolve(cqm: &Cqm) -> Presolve {
    let mut fixed: Vec<Option<u8>> = vec![None; cqm.num_vars()];
    let mut work = cqm.clone();
    let mut dropped = 0usize;
    let mut infeasible = false;

    for _round in 0..16 {
        let mut changed = false;

        // 1. Forcing tests per constraint.
        for c in &work.constraints {
            let min_act = c.expr.min_value();
            let max_act = c.expr.max_value();
            match c.sense {
                Sense::Le => {
                    if min_act > c.rhs + 1e-9 {
                        infeasible = true;
                    }
                    for &(v, coeff) in c.expr.terms() {
                        if fixed[v.index()].is_some() {
                            continue;
                        }
                        // Activity with x_v forced on, everything else at
                        // its minimum.
                        let with_v = min_act - coeff.min(0.0) + coeff.max(0.0);
                        if with_v > c.rhs + 1e-9 {
                            // x_v = 1 is impossible at the constraint's own
                            // optimum ⇒ x_v must take the other value.
                            fixed[v.index()] = Some(u8::from(coeff < 0.0));
                            changed = true;
                        }
                    }
                }
                Sense::Eq => {
                    if min_act > c.rhs + 1e-9 || max_act < c.rhs - 1e-9 {
                        infeasible = true;
                    }
                    for &(v, coeff) in c.expr.terms() {
                        if fixed[v.index()].is_some() {
                            continue;
                        }
                        let min_with_on = min_act - coeff.min(0.0) + coeff.max(0.0);
                        let max_with_off = max_act - coeff.max(0.0) + coeff.min(0.0);
                        if min_with_on > c.rhs + 1e-9 {
                            fixed[v.index()] = Some(u8::from(coeff < 0.0));
                            changed = true;
                        } else if max_with_off < c.rhs - 1e-9 {
                            // x_v must contribute its positive part.
                            fixed[v.index()] = Some(u8::from(coeff > 0.0));
                            changed = true;
                        }
                    }
                }
            }
        }

        if !changed {
            break;
        }

        // 2. Substitute into every expression.
        for t in &mut work.squared_terms {
            t.expr = substitute(&t.expr, &fixed);
        }
        for c in &mut work.constraints {
            c.expr = substitute(&c.expr, &fixed);
        }
        work.linear_objective = substitute(&work.linear_objective, &fixed);
    }

    // 3. Drop constraints that can no longer be violated.
    let before = work.constraints.len();
    work.constraints.retain(|c| match c.sense {
        Sense::Le => c.expr.max_value() > c.rhs + 1e-9,
        Sense::Eq => !(c.expr.min_value() >= c.rhs - 1e-9 && c.expr.max_value() <= c.rhs + 1e-9),
    });
    dropped += before - work.constraints.len();

    Presolve {
        cqm: work,
        fixed,
        dropped_constraints: dropped,
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Var;

    #[test]
    fn zero_budget_fixes_everything() {
        // x0 + 2·x1 + 4·x2 ≤ 0 forces all three off.
        let mut cqm = Cqm::new(3);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0)
            .add_term(Var(1), 2.0)
            .add_term(Var(2), 4.0);
        cqm.add_constraint(e, Sense::Le, 0.0, "budget");
        let p = presolve(&cqm);
        assert_eq!(p.num_fixed(), 3);
        assert!(p.fixed.iter().all(|f| *f == Some(0)));
        assert!(!p.infeasible);
        // The constraint becomes trivially satisfied and is dropped.
        assert_eq!(p.dropped_constraints, 1);
        assert!(p.cqm.constraints.is_empty());
    }

    #[test]
    fn oversized_coefficients_die_smaller_survive() {
        // x0 + 2·x1 + 32·x2 ≤ 6: only the 32-bit is impossible.
        let mut cqm = Cqm::new(3);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0)
            .add_term(Var(1), 2.0)
            .add_term(Var(2), 32.0);
        cqm.add_constraint(e, Sense::Le, 6.0, "budget");
        let p = presolve(&cqm);
        assert_eq!(p.fixed[2], Some(0));
        assert_eq!(p.fixed[0], None);
        assert_eq!(p.fixed[1], None);
    }

    #[test]
    fn equality_forces_on_and_off() {
        // x0 + 2·x1 = 2 with only two variables: x1 must be 1, x0 must be 0.
        let mut cqm = Cqm::new(2);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0).add_term(Var(1), 2.0);
        cqm.add_constraint(e, Sense::Eq, 2.0, "exact");
        let p = presolve(&cqm);
        assert_eq!(p.fixed[1], Some(1), "without x1 the max is 1 < 2");
        assert_eq!(p.fixed[0], Some(0), "with x0 and x1 the min is 3 > 2");
        assert!(!p.infeasible);
    }

    #[test]
    fn negative_coefficients_force_on() {
        // −3·x0 + x1 ≤ −2: x0 must be 1 (otherwise min activity is 0 > −2).
        let mut cqm = Cqm::new(2);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), -3.0).add_term(Var(1), 1.0);
        cqm.add_constraint(e, Sense::Le, -2.0, "need_x0");
        let p = presolve(&cqm);
        assert_eq!(p.fixed[0], Some(1));
    }

    #[test]
    fn detects_infeasibility() {
        let mut cqm = Cqm::new(1);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0).add_constant(5.0);
        cqm.add_constraint(e, Sense::Le, 2.0, "never");
        let p = presolve(&cqm);
        assert!(p.infeasible);
    }

    #[test]
    fn substitution_reaches_the_objective() {
        // Budget fixes x1 = 0; the squared term must lose it.
        let mut cqm = Cqm::new(2);
        let mut obj = LinearExpr::new();
        obj.add_term(Var(0), 1.0).add_term(Var(1), 5.0);
        cqm.add_squared_term(obj, 3.0, 1.0);
        let mut e = LinearExpr::new();
        e.add_term(Var(1), 9.0);
        cqm.add_constraint(e, Sense::Le, 4.0, "kill_x1");
        let p = presolve(&cqm);
        assert_eq!(p.fixed[1], Some(0));
        assert_eq!(p.cqm.squared_terms[0].expr.len(), 1, "x1 substituted away");
        // Objective values agree with the original model under the fixing.
        for x0 in [0u8, 1] {
            let state = [x0, 0];
            assert!((p.cqm.objective(&state) - cqm.objective(&state)).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_to_state_stamps_values() {
        let mut cqm = Cqm::new(3);
        let mut e = LinearExpr::new();
        e.add_term(Var(2), 5.0);
        cqm.add_constraint(e, Sense::Le, 1.0, "kill_x2");
        let p = presolve(&cqm);
        let mut state = vec![1u8, 1, 1];
        p.apply_to_state(&mut state);
        assert_eq!(state, vec![1, 1, 0]);
    }

    #[test]
    fn clean_model_is_untouched() {
        let mut cqm = Cqm::new(2);
        let mut e = LinearExpr::new();
        e.add_term(Var(0), 1.0).add_term(Var(1), 1.0);
        cqm.add_constraint(e, Sense::Le, 1.0, "pick_one");
        let p = presolve(&cqm);
        assert_eq!(p.num_fixed(), 0);
        assert_eq!(p.dropped_constraints, 0);
        assert!(!p.infeasible);
        assert_eq!(p.cqm.constraints.len(), 1);
    }
}
