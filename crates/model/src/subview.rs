//! Frozen-complement sub-views of a CQM.
//!
//! The decomposition frontend (DESIGN.md §Decomposition) solves a large
//! model through a sequence of small *windows*: pick an active variable
//! subset, freeze every other variable at its incumbent value, and hand the
//! induced subproblem to the monolithic portfolio. A [`SubCqm`] is that
//! induced subproblem. It is extracted directly from the structural
//! [`Cqm`] — squared terms, linear objective, constraints — without
//! compiling the full model's CSR form: frozen variables fold into each
//! squared term's target and each constraint's right-hand side as
//! constants, so the window model is exactly the original restricted to
//! the active coordinates (up to an additive constant dropped with the
//! fully-frozen terms).

use crate::cqm::Cqm;
use crate::expr::{LinearExpr, Var};

/// A window subproblem: the original model restricted to an active variable
/// subset with the complement frozen at a reference state.
///
/// The contained [`Cqm`] is a self-contained model over
/// `active_vars().len()` variables; window variable `w` corresponds to full
/// variable `active_vars()[w]`. Objectives differ from the full model by an
/// additive constant only, so any window improvement is a full-model
/// improvement of the same magnitude.
#[derive(Debug, Clone)]
pub struct SubCqm {
    cqm: Cqm,
    active: Vec<usize>,
}

impl SubCqm {
    /// The window model.
    #[inline]
    pub fn cqm(&self) -> &Cqm {
        &self.cqm
    }

    /// Full-model indices of the window variables, in window order.
    #[inline]
    pub fn active_vars(&self) -> &[usize] {
        &self.active
    }

    /// Restricts a full assignment to the window coordinates.
    pub fn project(&self, full_state: &[u8]) -> Vec<u8> {
        self.active.iter().map(|&v| full_state[v]).collect()
    }

    /// Writes a window assignment back into the full state, leaving frozen
    /// coordinates untouched.
    pub fn fold_back(&self, window_state: &[u8], full_state: &mut [u8]) {
        for (w, &v) in self.active.iter().enumerate() {
            full_state[v] = window_state[w];
        }
    }
}

impl Cqm {
    /// Extracts the sub-view induced by `active` with every other variable
    /// frozen at its value in `frozen` (which must be a full assignment).
    ///
    /// Squared terms and constraints whose support is entirely frozen are
    /// dropped: the window cannot change them, and the decomposition loop
    /// always re-scores candidate states against the full model.
    ///
    /// # Panics
    /// Panics if an active index is out of range, repeated, or if `frozen`
    /// is shorter than the model width.
    pub fn subview(&self, active: &[usize], frozen: &[u8]) -> SubCqm {
        assert!(
            frozen.len() >= self.num_vars(),
            "frozen state narrower than the model"
        );
        // Full index -> window index, usize::MAX = frozen.
        let mut to_window = vec![usize::MAX; self.num_vars()];
        for (w, &v) in active.iter().enumerate() {
            assert!(v < self.num_vars(), "active var {v} out of range");
            assert!(to_window[v] == usize::MAX, "active var {v} repeated");
            to_window[v] = w;
        }

        // Splits an expression into its active-coordinate remap plus the
        // frozen contribution (a plain constant under `frozen`).
        let split = |expr: &LinearExpr| -> (LinearExpr, f64) {
            let mut sub = LinearExpr::with_capacity(expr.len().min(active.len()));
            let mut frozen_sum = 0.0;
            for &(v, c) in expr.terms() {
                let w = to_window[v.index()];
                if w == usize::MAX {
                    if frozen[v.index()] != 0 {
                        frozen_sum += c;
                    }
                } else {
                    sub.add_term(Var(w as u32), c);
                }
            }
            (sub, frozen_sum)
        };

        let mut cqm = Cqm::new(active.len());
        for t in &self.squared_terms {
            let (mut sub, frozen_sum) = split(&t.expr);
            if sub.is_empty() {
                continue;
            }
            sub.add_constant(t.expr.constant_part());
            cqm.add_squared_term(sub, t.target - frozen_sum, t.weight);
        }
        {
            let (mut sub, frozen_sum) = split(&self.linear_objective);
            sub.add_constant(self.linear_objective.constant_part() + frozen_sum);
            cqm.linear_objective = sub;
        }
        for c in &self.constraints {
            let (mut sub, frozen_sum) = split(&c.expr);
            if sub.is_empty() {
                continue;
            }
            sub.add_constant(c.expr.constant_part());
            cqm.add_constraint(sub, c.sense, c.rhs - frozen_sum, c.label.clone());
        }
        SubCqm {
            cqm,
            active: active.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqm::Sense;

    /// minimize (x0+x1+x2 − 2)² + (x1 − 1)²  s.t.  x0+x2 ≤ 1, x1+x3 = 1
    fn model() -> Cqm {
        let mut cqm = Cqm::new(4);
        let mut a = LinearExpr::new();
        a.add_term(Var(0), 1.0)
            .add_term(Var(1), 1.0)
            .add_term(Var(2), 1.0);
        cqm.add_squared_term(a, 2.0, 1.0);
        let mut b = LinearExpr::new();
        b.add_term(Var(1), 1.0);
        cqm.add_squared_term(b, 1.0, 1.0);
        let mut cap = LinearExpr::new();
        cap.add_term(Var(0), 1.0).add_term(Var(2), 1.0);
        cqm.add_constraint(cap, Sense::Le, 1.0, "cap");
        let mut cons = LinearExpr::new();
        cons.add_term(Var(1), 1.0).add_term(Var(3), 1.0);
        cqm.add_constraint(cons, Sense::Eq, 1.0, "cons");
        cqm
    }

    /// Window objective must track the full objective up to a constant:
    /// fold-back of any window state shifts both by the same amount.
    #[test]
    fn window_objective_tracks_full_objective() {
        let cqm = model();
        let frozen = [0u8, 1, 0, 0];
        let sub = cqm.subview(&[0, 2], &frozen);
        assert_eq!(sub.cqm().num_vars(), 2);
        let mut full = frozen;
        for w0 in 0..2u8 {
            for w2 in 0..2u8 {
                let window = [w0, w2];
                sub.fold_back(&window, &mut full);
                let d_full = cqm.objective(&full) - cqm.objective(&frozen);
                let d_win =
                    sub.cqm().objective(&window) - sub.cqm().objective(&sub.project(&frozen));
                assert!(
                    (d_full - d_win).abs() < 1e-12,
                    "window delta {d_win} != full delta {d_full}"
                );
            }
        }
    }

    /// Constraints with frozen support fold the frozen part into the rhs.
    #[test]
    fn frozen_vars_fold_into_rhs() {
        let cqm = model();
        // Freeze x1 = 1: "cons" becomes x3 = 0 in the window over {x3}.
        let sub = cqm.subview(&[3], &[0, 1, 0, 0]);
        // "cap" has no active support and is dropped; "cons" survives.
        assert_eq!(sub.cqm().constraints.len(), 1);
        let c = &sub.cqm().constraints[0];
        assert_eq!(c.label, "cons");
        assert_eq!(c.rhs, 0.0);
        assert!(sub.cqm().is_feasible(&[0]));
        assert!(!sub.cqm().is_feasible(&[1]));
    }

    /// Fully frozen squared terms disappear; the active ones keep their
    /// weight and shift their target.
    #[test]
    fn fully_frozen_terms_drop() {
        let cqm = model();
        let sub = cqm.subview(&[0], &[0, 1, 0, 0]);
        // (x1−1)² is fully frozen; (x0+x1+x2−2)² keeps x0 with target 2−1.
        assert_eq!(sub.cqm().squared_terms.len(), 1);
        assert_eq!(sub.cqm().squared_terms[0].target, 1.0);
    }

    /// Feasibility of a window state matches full-model feasibility of the
    /// folded state whenever the frozen complement is itself clean.
    #[test]
    fn window_feasibility_matches_folded_feasibility() {
        let cqm = model();
        let frozen = [0u8, 1, 0, 0]; // feasible: cap 0≤1, cons 1=1
        assert!(cqm.is_feasible(&frozen));
        let sub = cqm.subview(&[0, 2], &frozen);
        let mut full = frozen;
        for w0 in 0..2u8 {
            for w2 in 0..2u8 {
                let window = [w0, w2];
                sub.fold_back(&window, &mut full);
                assert_eq!(
                    sub.cqm().is_feasible(&window),
                    cqm.is_feasible(&full),
                    "window {window:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "active var 1 repeated")]
    fn repeated_active_vars_panic() {
        let cqm = model();
        let _ = cqm.subview(&[1, 1], &[0, 0, 0, 0]);
    }
}
