//! Cross-representation consistency: the incremental evaluator and the
//! materialized QUBO must agree on the energy of every state, for every
//! penalty scheme that both sides can express.

use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;

use qlrb_model::cqm::{Cqm, Sense};
use qlrb_model::eval::{CompiledCqm, CqmEvaluator, Evaluator};
use qlrb_model::expr::{LinearExpr, Var};
use qlrb_model::penalty::{to_bqm, PenaltyConfig, PenaltyStyle};

/// A small random CQM: one squared objective term over all vars, one
/// integral `≤` constraint, one equality.
fn random_cqm(seed: u64, n: usize) -> Cqm {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut cqm = Cqm::new(n);
    let mut obj = LinearExpr::new();
    for v in 0..n {
        obj.add_term(Var(v as u32), rng.random_range(-3.0..3.0));
    }
    cqm.add_squared_term(obj, rng.random_range(-2.0..2.0), 1.0);
    let mut le = LinearExpr::new();
    for v in 0..n {
        le.add_term(Var(v as u32), rng.random_range(1..4) as f64);
    }
    let le_max = le.max_value();
    cqm.add_constraint(le, Sense::Le, (le_max / 2.0).floor(), "cap");
    let mut eq = LinearExpr::new();
    for v in 0..n {
        eq.add_term(Var(v as u32), rng.random_range(1..3) as f64);
    }
    cqm.add_constraint(eq, Sense::Eq, 2.0, "pin");
    cqm
}

fn all_states(n: usize) -> impl Iterator<Item = Vec<u8>> {
    (0..(1u32 << n)).map(move |bits| (0..n).map(|i| ((bits >> i) & 1) as u8).collect())
}

#[test]
fn slack_qubo_matches_evaluator_exhaustively() {
    for seed in 0..5u64 {
        let cqm = random_cqm(seed, 5);
        let cfg = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::Slack);
        let bqm = to_bqm(&cqm, &cfg).expect("slack is QUBO-representable");
        let compiled = CompiledCqm::compile(&cqm, cfg);
        assert_eq!(
            bqm.num_vars(),
            compiled.num_vars(),
            "seed {seed}: both sides see the same slack augmentation"
        );
        let mut ev = CqmEvaluator::new(std::sync::Arc::clone(&compiled));
        for state in all_states(bqm.num_vars().min(12)) {
            let mut full = state.clone();
            full.resize(bqm.num_vars(), 0);
            ev.set_state(&full);
            let via_eval = ev.energy();
            let via_bqm = bqm.energy(&full);
            assert!(
                (via_eval - via_bqm).abs() < 1e-6 * (1.0 + via_bqm.abs()),
                "seed {seed}, state {full:?}: evaluator {via_eval} vs qubo {via_bqm}"
            );
        }
    }
}

#[test]
fn unbalanced_qubo_matches_evaluator_above_the_vertex() {
    // The evaluator flattens the unbalanced parabola below its vertex
    // (exp-faithful); the QUBO keeps the pure quadratic. They must agree
    // wherever no constraint sits below its vertex.
    let (l1, l2) = (0.96, 0.0331);
    for seed in 5..10u64 {
        let cqm = random_cqm(seed, 5);
        let cfg = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::Unbalanced { l1, l2 });
        let bqm = to_bqm(&cqm, &cfg).expect("unbalanced is QUBO-representable");
        let compiled = CompiledCqm::compile(&cqm, cfg);
        let mut ev = CqmEvaluator::new(std::sync::Arc::clone(&compiled));
        let vertex = -l1 / (2.0 * l2);
        for state in all_states(5) {
            // Skip states where some Le constraint is below the vertex.
            let below = cqm
                .constraints
                .iter()
                .any(|c| c.sense == Sense::Le && c.expr.value(&state) - c.rhs < vertex);
            if below {
                continue;
            }
            ev.set_state(&state);
            let via_eval = ev.energy();
            let via_bqm = bqm.energy(&state);
            assert!(
                (via_eval - via_bqm).abs() < 1e-6 * (1.0 + via_bqm.abs()),
                "seed {seed}, state {state:?}: evaluator {via_eval} vs qubo {via_bqm}"
            );
        }
    }
}

proptest! {
    /// Incremental flips through the compiled model stay consistent with
    /// the materialized QUBO along random walks.
    #[test]
    fn random_walk_energy_agreement(
        seed in 0u64..50,
        flips in proptest::collection::vec(0usize..5, 1..40),
    ) {
        let cqm = random_cqm(seed, 5);
        let cfg = PenaltyConfig::auto(&cqm, 2.0, PenaltyStyle::Slack);
        let bqm = to_bqm(&cqm, &cfg).expect("representable");
        let compiled = CompiledCqm::compile(&cqm, cfg);
        let mut ev = CqmEvaluator::new(compiled);
        for &v in &flips {
            ev.flip(v);
        }
        let via_bqm = bqm.energy(ev.state());
        prop_assert!((ev.energy() - via_bqm).abs() < 1e-6 * (1.0 + via_bqm.abs()));
    }
}
