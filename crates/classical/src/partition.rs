//! Shared machinery for partition-style algorithms.
//!
//! Greedy and KK solve the LRP as multiway number partitioning: they
//! produce, for each partition `p`, counts of how many tasks of each *class*
//! (source process) landed there. Identifying partition `p` with process `p`
//! — the paper's convention, with no relabeling — turns those counts
//! directly into a migration matrix.

use qlrb_core::{Instance, MigrationMatrix};

/// Per-partition class counts: `counts[p][j]` = tasks of class `j` (i.e.
/// originally owned by process `j`) placed into partition `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCounts {
    /// `m × m` counts, row = partition, column = task class.
    pub counts: Vec<Vec<u64>>,
}

impl PartitionCounts {
    /// An empty counts table for `m` partitions/classes.
    pub fn zeros(m: usize) -> Self {
        Self {
            counts: vec![vec![0; m]; m],
        }
    }

    /// Load of partition `p` under per-class weights `w`.
    pub fn load(&self, p: usize, w: &[f64]) -> f64 {
        self.counts[p]
            .iter()
            .zip(w)
            .map(|(&c, &wj)| c as f64 * wj)
            .sum()
    }

    /// Converts to a migration matrix with the identity partition→process
    /// mapping: `x[i][j] = counts[i][j]`.
    pub fn into_matrix(self) -> MigrationMatrix {
        let m = self.counts.len();
        let mut mat = MigrationMatrix::zeros(m);
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                mat.set(i, j, c);
            }
        }
        mat
    }

    /// Converts with an explicit partition→process mapping `assign[p] = i`
    /// (each partition's tasks land on process `assign[p]`).
    pub fn into_matrix_with_assignment(self, assign: &[usize]) -> MigrationMatrix {
        let m = self.counts.len();
        assert_eq!(assign.len(), m);
        let mut mat = MigrationMatrix::zeros(m);
        for (p, row) in self.counts.iter().enumerate() {
            let i = assign[p];
            for (j, &c) in row.iter().enumerate() {
                mat.add(i, j, c);
            }
        }
        mat
    }
}

/// Sanity-check helper used by tests: counts conserve each class.
pub fn conserves_classes(counts: &PartitionCounts, inst: &Instance) -> bool {
    let m = inst.num_procs();
    (0..m).all(|j| {
        let total: u64 = counts.counts.iter().map(|row| row[j]).sum();
        total == inst.tasks_per_proc()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_conversion_identity_mapping() {
        let mut pc = PartitionCounts::zeros(2);
        pc.counts[0] = vec![3, 1];
        pc.counts[1] = vec![0, 2];
        let mat = pc.into_matrix();
        assert_eq!(mat.get(0, 0), 3);
        assert_eq!(mat.get(0, 1), 1);
        assert_eq!(mat.get(1, 1), 2);
        assert_eq!(mat.num_migrated(), 1);
    }

    #[test]
    fn matrix_conversion_with_swap() {
        let mut pc = PartitionCounts::zeros(2);
        pc.counts[0] = vec![0, 3];
        pc.counts[1] = vec![3, 0];
        // Swapping labels turns a full shuffle into zero migrations.
        let mat = pc.into_matrix_with_assignment(&[1, 0]);
        assert_eq!(mat.num_migrated(), 0);
        assert_eq!(mat.get(0, 0), 3);
        assert_eq!(mat.get(1, 1), 3);
    }

    #[test]
    fn load_uses_class_weights() {
        let mut pc = PartitionCounts::zeros(2);
        pc.counts[0] = vec![2, 1];
        assert_eq!(pc.load(0, &[1.0, 10.0]), 12.0);
    }
}
