#![forbid(unsafe_code)]
//! # qlrb-classical — classical load-rebalancing baselines
//!
//! The three classical methods the paper compares against, plus extensions:
//!
//! * [`greedy::Greedy`] — Graham's LPT rule applied as multiway number
//!   partitioning: sort all `N` tasks by weight descending, place each into
//!   the currently least-loaded partition. Partition `p` is identified with
//!   process `p` (no relabeling), exactly as the paper runs it — which is
//!   why Greedy migrates ≈ `N·(M−1)/M` tasks.
//! * [`kk::KarmarkarKarp`] — the multiway differencing method: repeatedly
//!   combine the two tuples with the largest internal spread, adding the
//!   largest part of one to the smallest part of the other.
//! * [`proactlb::ProactLb`] — the proactive load balancer of Chung et al.
//!   (the paper's ref. \[8\]): a *distributed* view that only moves tasks from
//!   overloaded to underloaded processes, sized by the load gap — trading a
//!   little balance for far fewer migrations.
//! * [`relabel::GreedyRelabeled`] — an extension/ablation: Greedy's
//!   partitioning followed by a Hungarian assignment of partitions to
//!   processes that maximizes kept tasks, quantifying how much of Greedy's
//!   migration overhead is a pure labeling artifact.
//! * [`complexity`] — the complexity/qubit overview of the paper's Table I.
//!
//! All methods implement [`qlrb_core::Rebalancer`] and return validated
//! [`qlrb_core::MigrationMatrix`] plans.

pub mod complexity;
pub mod greedy;
pub mod kk;
pub mod optimal;
pub mod partition;
pub mod proactlb;
pub mod relabel;

pub use greedy::Greedy;
pub use kk::KarmarkarKarp;
pub use optimal::BranchAndBound;
pub use proactlb::ProactLb;
pub use relabel::GreedyRelabeled;
