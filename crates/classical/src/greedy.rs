//! Greedy (Graham's LPT) multiway partitioning.

use std::time::Instant;

use qlrb_core::{Instance, RebalanceError, RebalanceOutcome, Rebalancer};

use crate::partition::PartitionCounts;

/// The Greedy baseline: longest-processing-time-first list scheduling.
///
/// All `N` tasks are sorted by weight descending and assigned one by one to
/// the partition with the smallest cumulative load (ties → lowest index).
/// As in the paper, migration cost is ignored entirely: partition `p` is
/// process `p`, and any task whose partition differs from its origin counts
/// as migrated.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Greedy {
    /// Runs the partitioning and returns the raw per-class counts.
    pub fn partition(inst: &Instance) -> PartitionCounts {
        let m = inst.num_procs();
        let mut counts = PartitionCounts::zeros(m);
        let mut loads = vec![0.0f64; m];
        for (w, class) in inst.tasks_by_weight_desc() {
            // Smallest load wins; ties resolved by lowest partition index.
            let (p, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .expect("at least one partition"); // qlrb-lint: allow(no-unwrap)
            counts.counts[p][class] += 1;
            loads[p] += w;
        }
        counts
    }
}

impl Rebalancer for Greedy {
    fn name(&self) -> String {
        "Greedy".into()
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        let started = Instant::now();
        let matrix = Self::partition(inst).into_matrix();
        let runtime = started.elapsed();
        matrix.validate(inst)?;
        Ok(RebalanceOutcome {
            matrix,
            runtime,
            qpu_time: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::conserves_classes;
    use proptest::prelude::*;

    #[test]
    fn balances_the_paper_fig7_example() {
        let inst = Instance::uniform(5, vec![1.87, 1.97, 3.12, 2.81]).unwrap();
        let out = Greedy.rebalance(&inst).unwrap();
        out.matrix.validate(&inst).unwrap();
        let after = inst.stats_after(&out.matrix);
        assert!(after.imbalance_ratio < inst.stats().imbalance_ratio);
        assert!(after.l_max <= inst.stats().l_max);
    }

    #[test]
    fn migrates_about_n_over_m_fraction() {
        // Paper Table III: Greedy on 8 nodes × 100 tasks migrates ≈ 700.
        let weights: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let inst = Instance::uniform(100, weights).unwrap();
        let out = Greedy.rebalance(&inst).unwrap();
        let migrated = out.matrix.num_migrated();
        assert!(
            (600..=740).contains(&migrated),
            "expected ≈700 migrations, got {migrated}"
        );
    }

    #[test]
    fn uniform_weights_give_perfect_balance() {
        let inst = Instance::uniform(10, vec![2.0; 4]).unwrap();
        let out = Greedy.rebalance(&inst).unwrap();
        assert_eq!(inst.stats_after(&out.matrix).imbalance_ratio, 0.0);
        for i in 0..4 {
            assert_eq!(out.matrix.tasks_on(i), 10);
        }
    }

    #[test]
    fn single_process_is_noop() {
        let inst = Instance::uniform(7, vec![3.0]).unwrap();
        let out = Greedy.rebalance(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
    }

    #[test]
    fn lpt_quality_bound() {
        // Graham's bound: L_max(LPT) ≤ (4/3 − 1/(3M))·OPT, and OPT ≥ L_avg.
        let inst = Instance::uniform(3, vec![5.0, 3.0, 2.0, 7.0]).unwrap();
        let out = Greedy.rebalance(&inst).unwrap();
        let after = inst.stats_after(&out.matrix);
        let m = inst.num_procs() as f64;
        let bound = (4.0 / 3.0 - 1.0 / (3.0 * m)) * after.l_avg.max(7.0);
        assert!(after.l_max <= bound + 1e-9, "{} > {bound}", after.l_max);
    }

    proptest! {
        #[test]
        fn random_instances_conserve_and_never_worsen(
            n in 1u64..40,
            weights in proptest::collection::vec(0.0f64..50.0, 1..10),
        ) {
            let inst = Instance::uniform(n, weights).unwrap();
            let counts = Greedy::partition(&inst);
            prop_assert!(conserves_classes(&counts, &inst));
            let mat = counts.into_matrix();
            prop_assert!(mat.validate(&inst).is_ok());
            let after = inst.stats_after(&mat);
            // List-scheduling bound (from-scratch repartitioning may in
            // principle exceed the original L_max — Graham's anomaly).
            let w_max = inst.weights().iter().copied().fold(0.0f64, f64::max);
            let bound = (after.l_avg + w_max).max(inst.stats().l_max);
            prop_assert!(after.l_max <= bound + 1e-9);
        }
    }
}
