//! ProactLB — proactive, migration-aware load balancing (Chung et al. 2023).
//!
//! Unlike Greedy/KK, ProactLB takes the *distributed* view: the current
//! assignment is the starting point, and only the load **difference**
//! between overloaded and underloaded processes is moved. Each overloaded
//! process sheds `⌊(L_i − L_avg)/w_i⌋` of its own tasks toward the
//! processes with the largest deficits, never overfilling a receiver past
//! the average. The result is a near-balanced plan whose migration count is
//! a small fraction of the partitioning baselines' — the paper's `k1`.

use std::time::Instant;

use qlrb_core::{Instance, MigrationMatrix, RebalanceError, RebalanceOutcome, Rebalancer};

/// The ProactLB baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProactLb;

impl ProactLb {
    /// Computes the migration plan without timing/validation wrapping.
    pub fn plan(inst: &Instance) -> MigrationMatrix {
        let m = inst.num_procs();
        let loads = inst.loads();
        let l_avg = loads.iter().sum::<f64>() / m as f64;
        let mut plan = MigrationMatrix::identity(inst);

        // Overloaded donors, most loaded first.
        let mut donors: Vec<usize> = (0..m).filter(|&i| loads[i] > l_avg).collect();
        donors.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]));
        // Receivers with their current deficit, largest first.
        let mut deficits: Vec<(usize, f64)> = (0..m)
            .filter(|&j| loads[j] < l_avg)
            .map(|j| (j, l_avg - loads[j]))
            .collect();
        deficits.sort_by(|a, b| b.1.total_cmp(&a.1));

        for &i in &donors {
            let w = inst.weights()[i];
            if w <= 0.0 {
                continue;
            }
            // Shed only whole tasks, never dipping below the average.
            let mut to_shed = ((loads[i] - l_avg) / w).floor() as u64;
            to_shed = to_shed.min(inst.tasks_per_proc());
            for entry in deficits.iter_mut() {
                if to_shed == 0 {
                    break;
                }
                let (j, deficit) = (entry.0, entry.1);
                // Fill the receiver's deficit in whole tasks, rounding: an
                // overshoot of at most w/2 is allowed, which still stays
                // strictly below the donor's original load (a donor only
                // sheds when it sits ≥ w above the average).
                let take = ((deficit / w + 0.5).floor() as u64).min(to_shed);
                if take == 0 {
                    continue;
                }
                plan.migrate(i, j, take).expect("bounded by resident tasks"); // qlrb-lint: allow(no-unwrap)
                entry.1 -= take as f64 * w;
                to_shed -= take;
            }
        }
        plan
    }
}

impl Rebalancer for ProactLb {
    fn name(&self) -> String {
        "ProactLB".into()
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        let started = Instant::now();
        let matrix = Self::plan(inst);
        let runtime = started.elapsed();
        matrix.validate(inst)?;
        Ok(RebalanceOutcome {
            matrix,
            runtime,
            qpu_time: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balances_without_overshooting() {
        let inst = Instance::uniform(100, vec![1.0, 2.0, 3.0, 10.0]).unwrap();
        let out = ProactLb.rebalance(&inst).unwrap();
        let before = inst.stats();
        let after = inst.stats_after(&out.matrix);
        assert!(after.imbalance_ratio < before.imbalance_ratio / 4.0);
        assert!(after.l_max <= before.l_max + 1e-9);
        // Receivers may overshoot the average by at most half the heaviest
        // task weight (the rounding rule), never more.
        let l_avg = before.l_avg;
        let w_max = inst.weights().iter().copied().fold(0.0f64, f64::max);
        for (j, load) in out.matrix.new_loads(&inst).iter().enumerate() {
            if inst.loads()[j] < l_avg {
                assert!(
                    *load <= l_avg + w_max / 2.0 + 1e-9,
                    "receiver {j} pushed too far past average: {load} > {l_avg}"
                );
            }
        }
    }

    #[test]
    fn migrates_far_fewer_than_greedy() {
        // Paper Table II: ProactLB ≈ 60 vs Greedy ≈ 350 on 8×50 instances.
        let weights: Vec<f64> = vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5];
        let inst = Instance::uniform(50, weights).unwrap();
        let proact = ProactLb.rebalance(&inst).unwrap().matrix.num_migrated();
        let greedy = crate::Greedy
            .rebalance(&inst)
            .unwrap()
            .matrix
            .num_migrated();
        assert!(
            proact * 3 < greedy,
            "ProactLB ({proact}) should migrate well under a third of Greedy ({greedy})"
        );
    }

    #[test]
    fn balanced_input_means_no_migration() {
        let inst = Instance::uniform(20, vec![2.0; 6]).unwrap();
        let out = ProactLb.rebalance(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
    }

    #[test]
    fn only_overloaded_processes_donate() {
        let inst = Instance::uniform(10, vec![1.0, 2.0, 6.0]).unwrap();
        let plan = ProactLb::plan(&inst);
        // Processes 0 and 1 are below average ((10+20+60)/3 = 30): they must
        // not send anything.
        for j in 0..2 {
            for i in 0..3 {
                if i != j {
                    assert_eq!(plan.get(i, j), 0, "underloaded {j} donated to {i}");
                }
            }
        }
        assert!(plan.num_migrated() > 0);
    }

    #[test]
    fn zero_weight_donor_is_skipped() {
        // A zero-weight process can never be overloaded, but guard the
        // division anyway via an all-zero instance.
        let inst = Instance::uniform(5, vec![0.0, 0.0]).unwrap();
        let out = ProactLb.rebalance(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
    }

    proptest! {
        #[test]
        fn never_worsens_and_conserves(
            n in 1u64..60,
            weights in proptest::collection::vec(0.0f64..30.0, 1..12),
        ) {
            let inst = Instance::uniform(n, weights).unwrap();
            let plan = ProactLb::plan(&inst);
            prop_assert!(plan.validate(&inst).is_ok());
            prop_assert!(inst.stats_after(&plan).l_max <= inst.stats().l_max + 1e-9);
        }
    }
}
