//! Greedy with migration-minimizing relabeling (extension/ablation).
//!
//! Greedy and KK treat partition `p` as process `p`, so even a partition
//! identical to the original assignment *up to permutation* reports `N`
//! migrations. This extension runs Greedy's partitioning, then solves the
//! assignment problem "map partitions to processes maximizing kept tasks"
//! with the Hungarian algorithm — quantifying how much of the classical
//! methods' migration overhead is a pure labeling artifact (the ablation
//! behind the paper's observation that migration-aware methods move ~¼ the
//! tasks).

use std::time::Instant;

use qlrb_core::{Instance, RebalanceError, RebalanceOutcome, Rebalancer};

use crate::greedy::Greedy;
use crate::partition::PartitionCounts;

/// Greedy + Hungarian relabeling.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRelabeled;

impl GreedyRelabeled {
    /// The kept-task-maximizing partition→process assignment for `counts`.
    pub fn best_assignment(counts: &PartitionCounts) -> Vec<usize> {
        // Maximize Σ_p counts[p][assign(p)] ⇔ minimize negated counts.
        let big = counts.counts.iter().flatten().copied().max().unwrap_or(0) as i64;
        let cost: Vec<Vec<i64>> = counts
            .counts
            .iter()
            .map(|row| row.iter().map(|&c| big - c as i64).collect())
            .collect();
        hungarian(&cost)
    }
}

impl Rebalancer for GreedyRelabeled {
    fn name(&self) -> String {
        "Greedy+relabel".into()
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        let started = Instant::now();
        let counts = Greedy::partition(inst);
        let assign = Self::best_assignment(&counts);
        let matrix = counts.into_matrix_with_assignment(&assign);
        let runtime = started.elapsed();
        matrix.validate(inst)?;
        Ok(RebalanceOutcome {
            matrix,
            runtime,
            qpu_time: None,
        })
    }
}

/// Hungarian algorithm (Kuhn–Munkres, O(n³) potentials formulation) for the
/// square min-cost assignment problem. Returns `assign[row] = column`.
///
/// Standard shortest-augmenting-path implementation with row/column
/// potentials `u`/`v`; 1-indexed internally to keep the sentinel column 0.
pub fn hungarian(cost: &[Vec<i64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(
        cost.iter().all(|r| r.len() == n),
        "cost matrix must be square"
    );
    if n == 0 {
        return Vec::new();
    }
    const INF: i64 = i64::MAX / 4;
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assign = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assign[p[j] - 1] = j - 1;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Greedy;
    use proptest::prelude::*;

    #[test]
    fn hungarian_solves_known_matrix() {
        // Optimal assignment: (0→1), (1→0), (2→2) with cost 1+2+3 = 6.
        let cost = vec![vec![4, 1, 7], vec![2, 8, 9], vec![6, 5, 3]];
        let assign = hungarian(&cost);
        assert_eq!(assign, vec![1, 0, 2]);
    }

    #[test]
    fn hungarian_identity_when_diagonal_cheapest() {
        let cost = vec![vec![0, 9, 9], vec![9, 0, 9], vec![9, 9, 0]];
        assert_eq!(hungarian(&cost), vec![0, 1, 2]);
    }

    #[test]
    fn hungarian_empty() {
        assert!(hungarian(&[]).is_empty());
    }

    #[test]
    fn relabeling_never_increases_migrations() {
        let weights: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.7).collect();
        let inst = Instance::uniform(50, weights).unwrap();
        let plain = Greedy.rebalance(&inst).unwrap();
        let relabeled = GreedyRelabeled.rebalance(&inst).unwrap();
        assert!(relabeled.matrix.num_migrated() <= plain.matrix.num_migrated());
        // Identical load multiset → identical balance quality.
        let a = inst.stats_after(&plain.matrix);
        let b = inst.stats_after(&relabeled.matrix);
        assert!((a.l_max - b.l_max).abs() < 1e-9);
        assert!((a.imbalance_ratio - b.imbalance_ratio).abs() < 1e-9);
    }

    #[test]
    fn permutation_partition_relabels_to_zero_migrations() {
        // With one task per process and weights in ascending order, LPT
        // produces exactly a permutation of the original assignment (the
        // heaviest class lands in partition 0, etc.); relabeling must
        // recognize it and report zero migrations where plain Greedy
        // reports N.
        let inst = Instance::uniform(1, vec![3.0, 5.0]).unwrap();
        let plain = Greedy.rebalance(&inst).unwrap();
        assert_eq!(plain.matrix.num_migrated(), 2);
        let out = GreedyRelabeled.rebalance(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
    }

    proptest! {
        #[test]
        fn hungarian_beats_identity_assignment(
            flat in proptest::collection::vec(0i64..100, 16),
        ) {
            let cost: Vec<Vec<i64>> = flat.chunks(4).map(|c| c.to_vec()).collect();
            let assign = hungarian(&cost);
            // Valid permutation.
            let mut seen = [false; 4];
            for &a in &assign {
                prop_assert!(!seen[a]);
                seen[a] = true;
            }
            let total: i64 = assign.iter().enumerate().map(|(r, &c)| cost[r][c]).sum();
            let identity: i64 = (0..4).map(|i| cost[i][i]).sum();
            prop_assert!(total <= identity);
        }
    }
}
