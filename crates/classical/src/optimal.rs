//! Exact (anytime) branch-and-bound for small LRP instances.
//!
//! The classical methods are heuristics and the hybrid solver is stochastic;
//! neither certifies optimality. For small instances this module computes
//! the true optimum, giving the test-suite and the ablations a quality
//! anchor (the paper's Table I row "optimal algorithms … help prune the
//! search space" in spirit).
//!
//! The uniform LRP structure keeps the search tractable: a solution is a
//! per-class *composition* — how class `j`'s `n` identical tasks split
//! across the `M` processes — so the tree has one level per class, not per
//! task. Branching heaviest class first with two prunes:
//!
//! * **bound prune**: a partial assignment whose current max load already
//!   meets or exceeds the incumbent can never win;
//! * **perfection stop**: an incumbent at the `L_total/M` lower bound is
//!   provably optimal.
//!
//! Objective: lexicographic (minimize `L_max`, then migrations). A node
//! budget makes the search anytime — `optimal: false` in the result means
//! the incumbent is best-effort.

use std::time::Instant;

use qlrb_core::{Instance, MigrationMatrix, RebalanceError, RebalanceOutcome, Rebalancer};

/// Branch-and-bound solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Maximum search-tree nodes to expand before returning the incumbent.
    pub node_budget: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        Self {
            node_budget: 2_000_000,
        }
    }
}

/// Search result.
#[derive(Debug, Clone)]
pub struct BnbResult {
    /// The best plan found.
    pub matrix: MigrationMatrix,
    /// Its `L_max`.
    pub l_max: f64,
    /// Whether the search completed (result certified optimal).
    pub optimal: bool,
    /// Nodes expanded.
    pub nodes: u64,
}

struct SearchCtx<'a> {
    weights_desc: Vec<(f64, usize)>, // (weight, original class), heaviest first
    n: u64,
    m: usize,
    lower_bound: f64,
    budget: u64,
    nodes: u64,
    best_lmax: f64,
    best_migrations: u64,
    best: Vec<Vec<u64>>, // counts[class position][proc]
    inst: &'a Instance,
}

impl SearchCtx<'_> {
    /// Recursive branch over class `depth`'s composition.
    fn search(&mut self, depth: usize, loads: &mut Vec<f64>, counts: &mut Vec<Vec<u64>>) {
        if self.nodes >= self.budget || self.best_lmax <= self.lower_bound + 1e-12 {
            return;
        }
        self.nodes += 1;
        let cur_max = loads.iter().copied().fold(0.0f64, f64::max);
        if cur_max >= self.best_lmax - 1e-12 {
            // Equal max can still win on migrations only if it ties exactly;
            // allow exact ties through, prune strict worse.
            if cur_max > self.best_lmax + 1e-12 {
                return;
            }
        }
        if depth == self.weights_desc.len() {
            let migrations = self.migrations_of(counts);
            if cur_max < self.best_lmax - 1e-12
                || (cur_max <= self.best_lmax + 1e-12 && migrations < self.best_migrations)
            {
                self.best_lmax = cur_max;
                self.best_migrations = migrations;
                self.best = counts.clone();
            }
            return;
        }
        let (w, _) = self.weights_desc[depth];
        // Enumerate compositions of n into m parts, lexicographically, by
        // recursion over processes.
        self.compose(depth, 0, self.n, w, loads, counts);
    }

    /// Distributes `remaining` tasks of weight `w` over processes `p..`.
    fn compose(
        &mut self,
        depth: usize,
        p: usize,
        remaining: u64,
        w: f64,
        loads: &mut Vec<f64>,
        counts: &mut Vec<Vec<u64>>,
    ) {
        if self.nodes >= self.budget || self.best_lmax <= self.lower_bound + 1e-12 {
            return;
        }
        if p == self.m - 1 {
            // Last process takes the rest.
            loads[p] += remaining as f64 * w;
            counts[depth][p] = remaining;
            if loads[p] < self.best_lmax + 1e-12 {
                self.search(depth + 1, loads, counts);
            }
            loads[p] -= remaining as f64 * w;
            counts[depth][p] = 0;
            return;
        }
        // Cap the count so this process alone cannot exceed the incumbent
        // (when w = 0 any count is load-neutral; take them all greedily).
        let max_here = if w > 0.0 {
            let room = ((self.best_lmax - loads[p]) / w).floor();
            if room < 0.0 {
                0
            } else {
                (room as u64).min(remaining)
            }
        } else {
            remaining
        };
        for c in 0..=max_here {
            loads[p] += c as f64 * w;
            counts[depth][p] = c;
            self.compose(depth, p + 1, remaining - c, w, loads, counts);
            loads[p] -= c as f64 * w;
            counts[depth][p] = 0;
            if self.nodes >= self.budget {
                return;
            }
        }
    }

    fn migrations_of(&self, counts: &[Vec<u64>]) -> u64 {
        let mut kept = 0;
        for (pos, &(_, class)) in self.weights_desc.iter().enumerate() {
            kept += counts[pos][class];
        }
        self.inst.num_tasks() - kept
    }
}

impl BranchAndBound {
    /// Runs the search.
    pub fn solve(&self, inst: &Instance) -> BnbResult {
        let m = inst.num_procs();
        let n = inst.tasks_per_proc();
        let mut weights_desc: Vec<(f64, usize)> = inst
            .weights()
            .iter()
            .copied()
            .enumerate()
            .map(|(c, w)| (w, c))
            .collect();
        weights_desc.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let total: f64 = inst.loads().iter().sum();
        let lower_bound = total / m as f64;

        // Incumbent: the better of Greedy and the identity, lexicographic
        // on (L_max, migrations). Seeding with the identity matters because
        // the perfection stop below ends the search once L_max reaches the
        // lower bound — on an already-balanced instance the zero-migration
        // identity must already be in hand at that point.
        let greedy = crate::Greedy::partition(inst).into_matrix();
        let greedy_lmax = inst.stats_after(&greedy).l_max;
        let identity = MigrationMatrix::identity(inst);
        let identity_lmax = inst.stats().l_max;
        let (incumbent, inc_lmax) = if identity_lmax <= greedy_lmax + 1e-12 {
            (identity, identity_lmax)
        } else {
            (greedy, greedy_lmax)
        };

        let mut ctx = SearchCtx {
            weights_desc,
            n,
            m,
            lower_bound,
            budget: self.node_budget,
            nodes: 0,
            best_lmax: inc_lmax,
            best_migrations: incumbent.num_migrated(),
            best: Vec::new(),
            inst,
        };
        let mut loads = vec![0.0; m];
        let mut counts = vec![vec![0u64; m]; inst.num_procs()];
        ctx.search(0, &mut loads, &mut counts);

        let matrix = if ctx.best.is_empty() {
            incumbent
        } else {
            let mut mat = MigrationMatrix::zeros(m);
            for (pos, &(_, class)) in ctx.weights_desc.iter().enumerate() {
                for p in 0..m {
                    mat.add(p, class, ctx.best[pos][p]);
                }
            }
            mat
        };
        let l_max = inst.stats_after(&matrix).l_max;
        BnbResult {
            matrix,
            l_max,
            optimal: ctx.nodes < self.node_budget,
            nodes: ctx.nodes,
        }
    }
}

impl Rebalancer for BranchAndBound {
    fn name(&self) -> String {
        "BnB-optimal".into()
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        let started = Instant::now();
        let result = self.solve(inst);
        result.matrix.validate(inst)?;
        Ok(RebalanceOutcome {
            matrix: result.matrix,
            runtime: started.elapsed(),
            qpu_time: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Greedy, KarmarkarKarp};

    #[test]
    fn finds_perfect_split_when_one_exists() {
        // Weights {1, 3} with n = 3 over 2 procs: total 12, perfect = 6
        // via {3,3}/{3,1,1,1}.
        let inst = Instance::uniform(3, vec![1.0, 3.0]).unwrap();
        let res = BranchAndBound::default().solve(&inst);
        assert!(res.optimal);
        assert!((res.l_max - 6.0).abs() < 1e-9, "L_max = {}", res.l_max);
        res.matrix.validate(&inst).unwrap();
    }

    #[test]
    fn never_worse_than_the_heuristics() {
        for weights in [
            vec![1.0, 2.0, 4.0],
            vec![5.0, 3.0, 2.0, 7.0],
            vec![1.0, 1.0, 10.0],
        ] {
            let inst = Instance::uniform(4, weights).unwrap();
            let opt = BranchAndBound::default().solve(&inst);
            assert!(opt.optimal);
            for heuristic in [
                Greedy.rebalance(&inst).unwrap().matrix,
                KarmarkarKarp.rebalance(&inst).unwrap().matrix,
            ] {
                let h_lmax = inst.stats_after(&heuristic).l_max;
                assert!(
                    opt.l_max <= h_lmax + 1e-9,
                    "BnB {} worse than heuristic {h_lmax}",
                    opt.l_max
                );
            }
        }
    }

    #[test]
    fn migration_tiebreak_prefers_staying() {
        // Already balanced: L_max can't improve, so the optimum is the
        // zero-migration identity.
        let inst = Instance::uniform(4, vec![2.0, 2.0, 2.0]).unwrap();
        let res = BranchAndBound::default().solve(&inst);
        assert!(res.optimal);
        assert_eq!(res.matrix.num_migrated(), 0, "{:?}", res.matrix);
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        // Integer loads make the L_total/M bound unattainable (7.5), so the
        // perfection stop can't fire and the tiny budget must run out.
        let inst = Instance::uniform(3, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let res = BranchAndBound { node_budget: 10 }.solve(&inst);
        assert!(!res.optimal);
        res.matrix.validate(&inst).unwrap();
        // Still no worse than the incumbent it started from.
        let greedy = Greedy.rebalance(&inst).unwrap().matrix;
        assert!(res.l_max <= inst.stats_after(&greedy).l_max + 1e-9);
    }

    #[test]
    fn zero_weight_classes_are_handled() {
        let inst = Instance::uniform(3, vec![0.0, 2.0]).unwrap();
        let res = BranchAndBound::default().solve(&inst);
        assert!(res.optimal);
        // Perfect split of three w=2 tasks over two procs: L_max = 4.
        assert!((res.l_max - 4.0).abs() < 1e-9);
        res.matrix.validate(&inst).unwrap();
    }
}
