//! The complexity / logical-qubit overview of the paper's Table I.

use qlrb_core::cqm::{logical_qubits, paper_qubit_formula, Variant};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexityRow {
    /// Algorithm name as printed in the paper.
    pub algorithm: &'static str,
    /// Asymptotic time complexity (symbolic).
    pub complexity: &'static str,
    /// Logical-qubit count (symbolic); empty for classical methods.
    pub logical_qubits: &'static str,
}

/// The symbolic rows of Table I.
///
/// Note: the paper's table prints the qubit widths with `⌊log₂(M/N)⌋`; with
/// `n = N/M` tasks per node that inner term is `n`, which is what the
/// running text uses — we print the text's (consistent) form.
pub fn table1_rows() -> Vec<ComplexityRow> {
    vec![
        ComplexityRow {
            algorithm: "Greedy",
            complexity: "O(N log N) - O(2^N)",
            logical_qubits: "",
        },
        ComplexityRow {
            algorithm: "KK",
            complexity: "O(N log N) - O(2^N)",
            logical_qubits: "",
        },
        ComplexityRow {
            algorithm: "ProactLB",
            complexity: "O(M^2 K)",
            logical_qubits: "",
        },
        ComplexityRow {
            algorithm: "Q_CQM1_k1, _k2",
            complexity: "",
            logical_qubits: "(M-1)^2 (floor(log2 n) + 1)",
        },
        ComplexityRow {
            algorithm: "Q_CQM2_k1, _k2",
            complexity: "",
            logical_qubits: "M^2 (floor(log2 n) + 1)",
        },
    ]
}

/// Concrete qubit numbers for one `(M, n)` configuration: `(paper formula,
/// qubits this implementation allocates)` per variant.
pub fn concrete_qubits(m: u64, n: u64) -> [(Variant, u64, u64); 2] {
    [
        (
            Variant::Reduced,
            paper_qubit_formula(Variant::Reduced, m, n),
            logical_qubits(Variant::Reduced, m, n),
        ),
        (
            Variant::Full,
            paper_qubit_formula(Variant::Full, m, n),
            logical_qubits(Variant::Full, m, n),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_five_methods() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.algorithm == "ProactLB"));
        assert!(rows.iter().filter(|r| !r.logical_qubits.is_empty()).count() == 2);
    }

    #[test]
    fn concrete_counts_for_headline_config() {
        // M = 32, n = 208 (the sam(oa)² case): bits = 8.
        let q = concrete_qubits(32, 208);
        assert_eq!(q[0].1, 31 * 31 * 8); // paper Q_CQM1
        assert_eq!(q[0].2, 32 * 31 * 8); // implementation Q_CQM1
        assert_eq!(q[1].1, 32 * 32 * 8); // Q_CQM2 agrees both ways
        assert_eq!(q[1].1, q[1].2);
    }
}
