//! Karmarkar–Karp multiway differencing.
//!
//! The set-differencing method generalized to `M`-way partitioning (Korf's
//! formulation): every number starts as an `M`-part tuple holding that
//! number in one part and zeros elsewhere. Repeatedly pop the two tuples
//! with the largest internal *spread* (max part − min part) and combine
//! them largest-against-smallest — committing the two sub-partitions to be
//! on "opposite sides" — until one tuple remains. The surviving tuple's
//! parts are the partitions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use qlrb_core::{Instance, RebalanceError, RebalanceOutcome, Rebalancer};

use crate::partition::PartitionCounts;

/// The Karmarkar–Karp baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct KarmarkarKarp;

/// One differencing tuple: `M` parts kept sorted by load descending, each
/// carrying its per-class task counts.
#[derive(Debug, Clone)]
struct Tuple {
    /// Part loads, descending.
    sums: Vec<f64>,
    /// `counts[part][class]`.
    counts: Vec<Vec<u64>>,
    /// Insertion sequence number for deterministic tie-breaking.
    seq: u64,
}

impl Tuple {
    fn spread(&self) -> f64 {
        self.sums[0] - self.sums[self.sums.len() - 1]
    }
}

struct HeapItem(Tuple);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on spread; ties broken by older sequence number first so
        // runs are reproducible.
        self.0
            .spread()
            .total_cmp(&other.0.spread())
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

impl KarmarkarKarp {
    /// Runs multiway differencing and returns per-class partition counts.
    pub fn partition(inst: &Instance) -> PartitionCounts {
        let m = inst.num_procs();
        if m == 1 {
            let mut counts = PartitionCounts::zeros(1);
            counts.counts[0][0] = inst.tasks_per_proc();
            return counts;
        }
        let mut heap = BinaryHeap::with_capacity(inst.num_tasks() as usize);
        let mut seq = 0u64;
        for (w, class) in inst.tasks_by_weight_desc() {
            let mut sums = vec![0.0; m];
            sums[0] = w;
            let mut counts = vec![vec![0u64; m]; m];
            counts[0][class] = 1;
            heap.push(HeapItem(Tuple { sums, counts, seq }));
            seq += 1;
        }
        while heap.len() > 1 {
            let (Some(HeapItem(a)), Some(HeapItem(b))) = (heap.pop(), heap.pop()) else {
                break; // unreachable: the loop guard holds at least two tuples
            };
            // Largest part of `a` pairs with smallest part of `b`, etc.
            let mut parts: Vec<(f64, Vec<u64>)> = (0..m)
                .map(|i| {
                    let bi = m - 1 - i;
                    let mut merged = a.counts[i].clone();
                    for (dst, src) in merged.iter_mut().zip(&b.counts[bi]) {
                        *dst += src;
                    }
                    (a.sums[i] + b.sums[bi], merged)
                })
                .collect();
            parts.sort_by(|x, y| y.0.total_cmp(&x.0));
            let (sums, counts) = parts.into_iter().unzip();
            heap.push(HeapItem(Tuple { sums, counts, seq }));
            seq += 1;
        }
        // Exactly one tuple survives differencing; an empty heap means the
        // instance had no tasks, where all-zero counts are the right answer.
        let counts = heap
            .pop()
            .map(|HeapItem(t)| t.counts)
            .unwrap_or_else(|| vec![vec![0; m]; m]);
        PartitionCounts { counts }
    }
}

impl Rebalancer for KarmarkarKarp {
    fn name(&self) -> String {
        "KK".into()
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        let started = Instant::now();
        let matrix = Self::partition(inst).into_matrix();
        let runtime = started.elapsed();
        matrix.validate(inst)?;
        Ok(RebalanceOutcome {
            matrix,
            runtime,
            qpu_time: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::conserves_classes;
    use proptest::prelude::*;

    #[test]
    fn two_way_differencing_textbook_example() {
        // The classic {8,7,6,5,4} two-way example: KK reaches difference 2.
        // Model as 5 "processes" with 1 task each.
        let inst = Instance::uniform(1, vec![8.0, 7.0, 6.0, 5.0, 4.0]).unwrap();
        // 5 partitions though — craft a 2-proc variant instead: weights per
        // proc can't express distinct numbers with one proc each... use
        // M = 2, n = 1, weights {8, 7}: trivial. Keep the 5-way instance and
        // just verify structural properties.
        let counts = KarmarkarKarp::partition(&inst);
        assert!(conserves_classes(&counts, &inst));
        let mat = counts.into_matrix();
        mat.validate(&inst).unwrap();
    }

    #[test]
    fn balances_at_least_as_well_as_doing_nothing() {
        let inst = Instance::uniform(50, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let out = KarmarkarKarp.rebalance(&inst).unwrap();
        let after = inst.stats_after(&out.matrix);
        assert!(after.l_max <= inst.stats().l_max + 1e-9);
        assert!(
            after.imbalance_ratio < 0.05,
            "KK should nearly balance uniform classes: {}",
            after.imbalance_ratio
        );
    }

    #[test]
    fn migration_count_close_to_greedy_scale() {
        // Paper Tables III/IV: KK and Greedy migrate nearly identical counts.
        let weights: Vec<f64> = (0..8).map(|i| 1.0 + 0.5 * i as f64).collect();
        let inst = Instance::uniform(100, weights).unwrap();
        let kk = KarmarkarKarp
            .rebalance(&inst)
            .unwrap()
            .matrix
            .num_migrated();
        assert!(
            (600..=760).contains(&kk),
            "expected ≈700 migrations, got {kk}"
        );
    }

    #[test]
    fn single_process_identity() {
        let inst = Instance::uniform(9, vec![2.0]).unwrap();
        let out = KarmarkarKarp.rebalance(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
        assert_eq!(out.matrix.get(0, 0), 9);
    }

    #[test]
    fn deterministic() {
        let inst = Instance::uniform(20, vec![3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        let a = KarmarkarKarp::partition(&inst);
        let b = KarmarkarKarp::partition(&inst);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn random_instances_valid_and_never_worse(
            n in 1u64..30,
            weights in proptest::collection::vec(0.0f64..20.0, 1..8),
        ) {
            let inst = Instance::uniform(n, weights).unwrap();
            let counts = KarmarkarKarp::partition(&inst);
            prop_assert!(conserves_classes(&counts, &inst));
            let mat = counts.into_matrix();
            prop_assert!(mat.validate(&inst).is_ok());
            // Differencing bound: each part stays within one largest task
            // of the mean. Loose but flake-proof — like any from-scratch
            // repartitioner, KK may in principle exceed the original
            // clumped-by-class L_max, but never mean + w_max.
            let after = inst.stats_after(&mat);
            let w_max = inst.weights().iter().copied().fold(0.0f64, f64::max);
            let bound = (after.l_avg + w_max).max(inst.stats().l_max);
            prop_assert!(after.l_max <= bound + 1e-9);
        }
    }
}
