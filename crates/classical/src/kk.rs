//! Karmarkar–Karp multiway differencing.
//!
//! The set-differencing method generalized to `M`-way partitioning (Korf's
//! formulation): every number starts as an `M`-part tuple holding that
//! number in one part and zeros elsewhere. Repeatedly pop the two tuples
//! with the largest internal *spread* (max part − min part) and combine
//! them largest-against-smallest — committing the two sub-partitions to be
//! on "opposite sides" — until one tuple remains. The surviving tuple's
//! parts are the partitions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use qlrb_core::{Instance, RebalanceError, RebalanceOutcome, Rebalancer};

use crate::partition::PartitionCounts;

/// The Karmarkar–Karp baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct KarmarkarKarp;

/// One differencing tuple: only the parts that carry tasks are
/// materialized (sorted by load descending, ties in construction order);
/// the remaining `M − parts.len()` parts are implicitly empty. A dense
/// `M × M` count matrix per tuple makes the heap O(n·M²) — hundreds of
/// gigabytes at the decomposition frontend's 1024-node scale — while the
/// task-bearing parts across the whole heap never exceed the task count.
/// Pairing against an implicit part is pairing against the zero tail of
/// the old dense arrays, so plans are bit-identical to the dense form.
#[derive(Debug, Clone)]
struct Tuple {
    /// Task-bearing parts, load descending.
    parts: Vec<Part>,
    /// `max part − min part` over all `M` parts (0 for the implicit ones),
    /// precomputed because the heap ordering cannot see `M`.
    spread: f64,
    /// Insertion sequence number for deterministic tie-breaking.
    seq: u64,
}

/// One materialized part: its load and sparse per-class task counts.
#[derive(Debug, Clone)]
struct Part {
    sum: f64,
    /// `(class, count)` pairs, ascending by class.
    counts: Vec<(u32, u64)>,
}

impl Tuple {
    fn spread(&self) -> f64 {
        self.spread
    }
}

/// Spread of a part list under `m`-way differencing: the implicit empty
/// parts pin the minimum at zero until all `m` parts carry load.
fn spread_of(parts: &[Part], m: usize) -> f64 {
    let hi = parts.first().map_or(0.0, |p| p.sum);
    let lo = if parts.len() < m {
        0.0
    } else {
        parts[parts.len() - 1].sum
    };
    hi - lo
}

/// Sums two sparse class-count lists (both ascending by class).
fn merge_counts(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Combines two tuples largest-against-smallest: `a`'s part `i` pairs
/// with `b`'s part `m − 1 − i`. With `ka` and `kb` materialized parts,
/// `b`'s contribution occupies indices `m − kb ..`, so the three ranges
/// below are "a alone", the overlap, and "b alone"; anything else pairs
/// empty-with-empty and stays implicit.
fn combine(mut a: Tuple, mut b: Tuple, m: usize, seq: u64) -> Tuple {
    let (ka, kb) = (a.parts.len(), b.parts.len());
    let lo = m - kb;
    let mut parts: Vec<Part> = Vec::with_capacity((ka + kb).min(m));
    for i in 0..ka.min(lo) {
        parts.push(Part {
            sum: a.parts[i].sum,
            counts: std::mem::take(&mut a.parts[i].counts),
        });
    }
    for i in lo..ka {
        let bp = &mut b.parts[m - 1 - i];
        parts.push(Part {
            sum: a.parts[i].sum + bp.sum,
            counts: merge_counts(&a.parts[i].counts, &bp.counts),
        });
    }
    for i in ka.max(lo)..m {
        let bp = &mut b.parts[m - 1 - i];
        parts.push(Part {
            sum: bp.sum,
            counts: std::mem::take(&mut bp.counts),
        });
    }
    // Stable sort: equal sums keep construction order, exactly like the
    // dense form's full-array sort.
    parts.sort_by(|x, y| y.sum.total_cmp(&x.sum));
    let spread = spread_of(&parts, m);
    Tuple { parts, spread, seq }
}

struct HeapItem(Tuple);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on spread; ties broken by older sequence number first so
        // runs are reproducible.
        self.0
            .spread()
            .total_cmp(&other.0.spread())
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

impl KarmarkarKarp {
    /// Runs multiway differencing and returns per-class partition counts.
    pub fn partition(inst: &Instance) -> PartitionCounts {
        let m = inst.num_procs();
        if m == 1 {
            let mut counts = PartitionCounts::zeros(1);
            counts.counts[0][0] = inst.tasks_per_proc();
            return counts;
        }
        let mut heap = BinaryHeap::with_capacity(inst.num_tasks() as usize);
        let mut seq = 0u64;
        for (w, class) in inst.tasks_by_weight_desc() {
            let parts = vec![Part {
                sum: w,
                counts: vec![(class as u32, 1)],
            }];
            let spread = spread_of(&parts, m);
            heap.push(HeapItem(Tuple { parts, spread, seq }));
            seq += 1;
        }
        while heap.len() > 1 {
            let (Some(HeapItem(a)), Some(HeapItem(b))) = (heap.pop(), heap.pop()) else {
                break; // unreachable: the loop guard holds at least two tuples
            };
            // Largest part of `a` pairs with smallest part of `b`, etc.
            heap.push(HeapItem(combine(a, b, m, seq)));
            seq += 1;
        }
        // Exactly one tuple survives differencing; an empty heap means the
        // instance had no tasks, where all-zero counts are the right answer.
        let mut counts = vec![vec![0u64; m]; m];
        if let Some(HeapItem(t)) = heap.pop() {
            for (part, p) in t.parts.iter().enumerate() {
                for &(class, n) in &p.counts {
                    counts[part][class as usize] = n;
                }
            }
        }
        PartitionCounts { counts }
    }
}

impl Rebalancer for KarmarkarKarp {
    fn name(&self) -> String {
        "KK".into()
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceOutcome, RebalanceError> {
        let started = Instant::now();
        let matrix = Self::partition(inst).into_matrix();
        let runtime = started.elapsed();
        matrix.validate(inst)?;
        Ok(RebalanceOutcome {
            matrix,
            runtime,
            qpu_time: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::conserves_classes;
    use proptest::prelude::*;

    #[test]
    fn two_way_differencing_textbook_example() {
        // The classic {8,7,6,5,4} two-way example: KK reaches difference 2.
        // Model as 5 "processes" with 1 task each.
        let inst = Instance::uniform(1, vec![8.0, 7.0, 6.0, 5.0, 4.0]).unwrap();
        // 5 partitions though — craft a 2-proc variant instead: weights per
        // proc can't express distinct numbers with one proc each... use
        // M = 2, n = 1, weights {8, 7}: trivial. Keep the 5-way instance and
        // just verify structural properties.
        let counts = KarmarkarKarp::partition(&inst);
        assert!(conserves_classes(&counts, &inst));
        let mat = counts.into_matrix();
        mat.validate(&inst).unwrap();
    }

    #[test]
    fn balances_at_least_as_well_as_doing_nothing() {
        let inst = Instance::uniform(50, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let out = KarmarkarKarp.rebalance(&inst).unwrap();
        let after = inst.stats_after(&out.matrix);
        assert!(after.l_max <= inst.stats().l_max + 1e-9);
        assert!(
            after.imbalance_ratio < 0.05,
            "KK should nearly balance uniform classes: {}",
            after.imbalance_ratio
        );
    }

    #[test]
    fn migration_count_close_to_greedy_scale() {
        // Paper Tables III/IV: KK and Greedy migrate nearly identical counts.
        let weights: Vec<f64> = (0..8).map(|i| 1.0 + 0.5 * i as f64).collect();
        let inst = Instance::uniform(100, weights).unwrap();
        let kk = KarmarkarKarp
            .rebalance(&inst)
            .unwrap()
            .matrix
            .num_migrated();
        assert!(
            (600..=760).contains(&kk),
            "expected ≈700 migrations, got {kk}"
        );
    }

    #[test]
    fn single_process_identity() {
        let inst = Instance::uniform(9, vec![2.0]).unwrap();
        let out = KarmarkarKarp.rebalance(&inst).unwrap();
        assert_eq!(out.matrix.num_migrated(), 0);
        assert_eq!(out.matrix.get(0, 0), 9);
    }

    #[test]
    fn deterministic() {
        let inst = Instance::uniform(20, vec![3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        let a = KarmarkarKarp::partition(&inst);
        let b = KarmarkarKarp::partition(&inst);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn random_instances_valid_and_never_worse(
            n in 1u64..30,
            weights in proptest::collection::vec(0.0f64..20.0, 1..8),
        ) {
            let inst = Instance::uniform(n, weights).unwrap();
            let counts = KarmarkarKarp::partition(&inst);
            prop_assert!(conserves_classes(&counts, &inst));
            let mat = counts.into_matrix();
            prop_assert!(mat.validate(&inst).is_ok());
            // Differencing bound: each part stays within one largest task
            // of the mean. Loose but flake-proof — like any from-scratch
            // repartitioner, KK may in principle exceed the original
            // clumped-by-class L_max, but never mean + w_max.
            let after = inst.stats_after(&mat);
            let w_max = inst.weights().iter().copied().fold(0.0f64, f64::max);
            let bound = (after.l_avg + w_max).max(inst.stats().l_max);
            prop_assert!(after.l_max <= bound + 1e-9);
        }
    }
}
