//! The trace vocabulary: serde-serializable records describing one hybrid
//! solve, from individual portfolio reads up to the whole sample set.
//!
//! All records measure energies against the *penalized* surrogate the
//! samplers walk (that is what acceptance decisions see), except
//! `objective`/`violation`/`feasible`, which the solver backfills after
//! rescoring each state against the original CQM.

use serde::{Deserialize, Serialize};

/// One backend fault observed during a read's submission attempts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Zero-based submission attempt that failed.
    pub attempt: u32,
    /// Pool member the failing attempt was dispatched to.
    pub backend: String,
    /// Rendered `SubmitError`, e.g. `"backend crashed"`.
    pub error: String,
}

/// A read whose every submission attempt failed: the retry budget was
/// exhausted (or the per-read deadline cut retries short) and the read
/// produced no sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedReadRecord {
    /// Read index within the solve.
    pub read: usize,
    /// Sampler the read was assigned to (`"SA"`, `"SQA"`, `"TABU"`, `"PT"`).
    pub sampler: String,
    /// Pool member the read's first attempt was dispatched to (retries may
    /// have walked other members; see each fault's `backend`).
    pub backend: String,
    /// The faults hit, one per attempt, in attempt order.
    pub faults: Vec<FaultRecord>,
}

/// Everything observed about one independent portfolio read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadRecord {
    /// Read index within the solve (also selects the portfolio member).
    pub read: usize,
    /// Sampler that produced the state (`"SA"`, `"SQA"`, `"TABU"`, `"PT"`).
    /// May differ from the configured rotation when a read degrades (e.g.
    /// tabu falling back to SA on very wide models).
    pub sampler: String,
    /// The read's derived RNG seed (master seed + read offset).
    pub seed: u64,
    /// Whether the read started from a caller-provided candidate state
    /// rather than a random one.
    pub seeded: bool,
    /// Penalized energy entering the anneal (after seed repair, if any).
    pub initial_energy: f64,
    /// Best penalized energy the sampler itself reported.
    pub best_energy: f64,
    /// Penalized energy after polish and repair, i.e. of the returned state.
    pub final_energy: f64,
    /// Sweeps (or tabu iterations) the sampler performed.
    pub sweeps: u64,
    /// Move proposals examined (sweeps × neighbourhood size, per sampler).
    pub proposals: u64,
    /// Proposals accepted.
    pub accepted: u64,
    /// `accepted / proposals` (0 when no proposals were made).
    pub acceptance_rate: f64,
    /// Feasibility-repair flips spent (seed repair + post-polish repair).
    pub repair_steps: u64,
    /// Improving flips applied by the greedy polish passes.
    pub polish_flips: u64,
    /// Total penalized-energy reduction achieved by polish.
    pub polish_improvement: f64,
    /// Objective of the final state against the original CQM.
    pub objective: f64,
    /// True total violation of the final state (0 iff feasible).
    pub violation: f64,
    /// Feasibility verdict against the original CQM.
    pub feasible: bool,
    /// Wall-clock time of the whole read, milliseconds.
    pub wall_ms: f64,
    /// Submission attempts the read took (1 = first attempt succeeded).
    pub attempts: u32,
    /// Deterministic backoff charged before the successful attempt, in
    /// proposal units of the solver's virtual clock.
    pub backoff_proposals: u64,
    /// Faults hit on the failed attempts preceding the success, in
    /// attempt order (empty on a clean first attempt).
    pub faults: Vec<FaultRecord>,
    /// Pool member that executed the winning attempt.
    pub backend: String,
    /// Whether the winning attempt was resolved through a speculative race
    /// (either the hedge won or the primary beat a failed hedge).
    pub speculated: bool,
    /// Pool member whose in-flight duplicate was cancelled when this read's
    /// speculative race resolved; the cancelled side is never charged.
    pub cancelled_backend: Option<String>,
}

/// How many of a wave's reads one portfolio member received.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveAllocation {
    /// Sampler name (`"SA"`, `"SQA"`, `"TABU"`, `"PT"`).
    pub sampler: String,
    /// Reads allocated to it in this wave.
    pub reads: usize,
}

/// Timing of one parallel wave of reads (the unit the `time_limit` budget
/// is charged against; an unbudgeted solve is a single wave).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveRecord {
    /// Wave index within the solve.
    pub wave: usize,
    /// First read index launched in this wave.
    pub first_read: usize,
    /// Number of reads the wave ran.
    pub reads: usize,
    /// Per-sampler read split of this wave (fixed rotation or, under the
    /// adaptive scheduler, the bandit's reweighted allocation).
    pub allocation: Vec<WaveAllocation>,
    /// Reads of this wave that were warm-started from the elite pool.
    pub elite_seeded: usize,
    /// Wall-clock time of the wave, milliseconds.
    pub wall_ms: f64,
}

/// The CPU / simulated-QPU split of one solve, mirroring
/// `SolverTiming` in milliseconds for JSON consumers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingRecord {
    /// Classical wall time of the whole hybrid solve.
    pub cpu_ms: f64,
    /// Deterministic simulated QPU access charge.
    pub qpu_ms: f64,
}

/// Reporting surface of a sample set: the stable aggregate both the run
/// manifest and `bench_summary` consume instead of poking fields.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SampleSetSummary {
    /// Total samples returned.
    pub num_samples: usize,
    /// Samples satisfying every constraint.
    pub num_feasible: usize,
    /// Lowest objective over all samples (feasible or not).
    pub best_objective: Option<f64>,
    /// Highest objective over all samples.
    pub worst_objective: Option<f64>,
    /// `worst_objective − best_objective`: the energy spread of the set.
    pub objective_spread: Option<f64>,
    /// Lowest objective among feasible samples, if any.
    pub best_feasible_objective: Option<f64>,
}

/// Snapshot of a solver configuration, recorded into manifests so a trace
/// is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Independent reads per solve.
    pub num_reads: usize,
    /// Sweeps per SA read (other samplers derive their budgets from this).
    pub sweeps: usize,
    /// Trotter replicas for SQA reads.
    pub sqa_replicas: usize,
    /// Master seed.
    pub seed: u64,
    /// Penalty headroom multiplier.
    pub penalty_factor: f64,
    /// Inequality penalty scheme, rendered as text.
    pub style: String,
    /// Portfolio rotation, rendered as sampler names.
    pub samplers: Vec<String>,
    /// Width guard above which tabu reads fall back to SA.
    pub tabu_max_vars: usize,
    /// Greedy polish sweep budget.
    pub polish_sweeps: usize,
    /// Feasibility-repair step budget.
    pub repair_steps: usize,
    /// Wall-clock budget in milliseconds, if one was set.
    pub time_limit_ms: Option<f64>,
    /// Model-lint mode (`"Deny"`, `"Warn"`, or `"Off"`), rendered as text.
    pub lint: String,
    /// Whether bandit read-allocation + elite cross-seeding are on.
    pub adaptive: bool,
    /// Whether plateau-based early termination is on.
    pub early_stop: bool,
    /// Reads per scheduler wave (`0` = auto: one per portfolio member).
    pub wave_size: usize,
    /// Consecutive non-improving waves tolerated before stopping.
    pub plateau_window: usize,
    /// Relative objective improvement below which a wave counts as
    /// non-improving.
    pub plateau_tolerance: f64,
    /// Bounded elite-pool capacity.
    pub elite_capacity: usize,
    /// Fraction of each post-first wave's reads seeded from the elite pool.
    pub elite_fraction: f64,
    /// Retries allowed per read after its first failed submission.
    pub max_retries: u32,
    /// Per-read deadline in proposal units of the virtual clock, if set.
    pub read_deadline_proposals: Option<u64>,
    /// Primary backend — the first member of the pool (`"in-process"` or
    /// `"fault-injection"` for the single-backend shims).
    pub backend: String,
    /// Every pool member's id, in dispatch order (one entry — equal to
    /// `backend` — for single-backend configurations).
    pub backends: Vec<String>,
    /// Whether speculative dispatch (straggler racing) is on.
    pub speculate: bool,
    /// Whether the batched bitset fast path is on.
    pub batched: bool,
    /// Lanes per batched kernel invocation (1 when `batched` is off).
    pub batch_width: usize,
    /// Flip-delta kernel the solve used (`"scalar"` or `"batched"`).
    pub kernel: String,
    /// Whether the multilevel / active-window decomposition frontend is on.
    /// Absent in pre-v7 manifests (defaults to `false`).
    #[serde(default)]
    pub decompose: bool,
}

/// Per-backend dispatch accounting for one solve: how many reads each pool
/// member executed and what they cost. Cancelled speculative duplicates are
/// counted but never charged (no phantom QPU time or cost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendUsageRecord {
    /// Pool member id.
    pub backend: String,
    /// Successful reads whose winning attempt executed on this member.
    pub reads: usize,
    /// Failed submission attempts dispatched to this member (including
    /// attempts of reads that later succeeded elsewhere).
    pub failed_attempts: usize,
    /// Of `reads`, how many were resolved through a speculative race.
    pub speculative: usize,
    /// In-flight duplicates on this member that were cancelled when the
    /// other side of a speculative race won.
    pub cancelled: usize,
    /// Total cost charged: `reads × cost_per_read` from the member's
    /// declared profile. Cancelled and failed attempts charge nothing.
    pub cost: f64,
    /// Simulated QPU access time charged to this member, milliseconds
    /// (per-read QPU charge × SQA reads executed here).
    pub qpu_ms: f64,
}

/// One model-lint diagnostic, flattened to strings so the trace vocabulary
/// stays independent of the linter's typed rule catalogue (`qlrb-analyze`
/// depends on the model layer; the telemetry layer depends on neither).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintDiagnosticRecord {
    /// Stable rule identifier, e.g. `"penalty-below-bound"`.
    pub rule: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// Rendered span, e.g. `"constraint 3 (capacity[0])"` or `"var 17"`.
    pub span: String,
    /// Human-readable finding.
    pub message: String,
}

/// The model linter's verdict on one CQM, recorded before the solve runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintRecord {
    /// Variable width of the linted CQM.
    pub num_vars: usize,
    /// Error-severity diagnostics.
    pub errors: usize,
    /// Warning-severity diagnostics.
    pub warnings: usize,
    /// Whether the solver refused the model (`LintMode::Deny` with errors).
    pub denied: bool,
    /// The individual findings.
    pub diagnostics: Vec<LintDiagnosticRecord>,
}

/// One level of a decomposed solve. For the multilevel path a level is a
/// coarsening stage (level 0 = the original instance); for the
/// active-window path there is a single level covering the full model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecompositionLevelRecord {
    /// Level index, 0 = finest (the original problem).
    pub level: usize,
    /// Processes (multilevel) or variables (active-window) at this level.
    pub size: usize,
    /// Variable width of the model solved at this level (0 when the level
    /// only projects a coarser plan without its own solve).
    pub solved_vars: usize,
    /// Objective (Σ(L'_i − L_avg)² for multilevel, CQM energy for
    /// active-window) entering the level.
    pub objective_before: f64,
    /// Objective after the level's solve/projection/refinement.
    pub objective_after: f64,
    /// Wall-clock time spent on the level, milliseconds.
    pub wall_ms: f64,
}

/// One refinement window solved during decomposition: a frozen-complement
/// subproblem handed to the monolithic portfolio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecompositionWindowRecord {
    /// Level the window refines.
    pub level: usize,
    /// Window index within the level.
    pub window: usize,
    /// Variable width of the window subproblem.
    pub vars: usize,
    /// Objective of the full model before folding the window back.
    pub objective_before: f64,
    /// Objective of the full model after fold-back (equal to
    /// `objective_before` when the window's solution was rejected).
    pub objective_after: f64,
    /// Whether the window's solution improved the incumbent and was kept.
    pub accepted: bool,
    /// Wall-clock time of the window solve, milliseconds.
    pub wall_ms: f64,
}

/// How a decomposed solve was orchestrated: the schema-v7 record attached
/// to a [`SolveRecord`] when the decomposition frontend ran. Absent
/// (`None`, and absent from pre-v7 manifests) for monolithic solves, in
/// which case it contributes nothing to the trace digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecompositionRecord {
    /// `"active-window"` or `"multilevel"`.
    pub strategy: String,
    /// Variable ceiling each subproblem was kept under.
    pub window_cap: usize,
    /// Per-level progression, coarse to fine.
    pub levels: Vec<DecompositionLevelRecord>,
    /// Every refinement window attempted, in solve order.
    pub windows: Vec<DecompositionWindowRecord>,
    /// Portfolio sub-solves launched in total.
    pub sub_solves: usize,
}

/// One `solve()` call: its reads, waves, timing split, and sample-set
/// summary. This is the unit a [`crate::sink::TraceSink`] receives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveRecord {
    /// Variable width of the original CQM.
    pub num_vars: usize,
    /// Width after presolve fixing and penalty compilation (slack bits
    /// included); 0 for trivial solves that never compile.
    pub compiled_vars: usize,
    /// Reads the configuration asked for (a `time_limit` may truncate).
    pub requested_reads: usize,
    /// Per-read trace records, in read order.
    pub reads: Vec<ReadRecord>,
    /// Reads that produced no sample because every submission attempt
    /// failed (empty on a healthy backend).
    pub failed_reads: Vec<FailedReadRecord>,
    /// Per-backend dispatch accounting, one entry per pool member in
    /// dispatch order; `reads` across entries sums to `reads.len()`.
    pub backend_usage: Vec<BackendUsageRecord>,
    /// Per-wave timings, in launch order.
    pub waves: Vec<WaveRecord>,
    /// Why the wave loop stopped: `"exhausted"`, `"plateau"`, `"fast-exit"`,
    /// `"time-limit"`, or `"backend-exhausted"`.
    pub termination: String,
    /// CPU / simulated-QPU split of the solve.
    pub timing: TimingRecord,
    /// Aggregate over the returned sample set.
    pub summary: SampleSetSummary,
    /// Deterministic fold of every per-read fingerprint plus the solve
    /// structure (16 hex digits; see [`crate::fingerprint`]). Identical
    /// configurations must reproduce it bit-for-bit; `qlrb trace diff`
    /// localizes the first divergent read when they do not. Empty in
    /// pre-v6 manifests.
    #[serde(default)]
    pub trace_digest: String,
    /// Decomposition orchestration trace, present only when the solve ran
    /// through the decomposing frontend (schema v7; absent — hence `None`
    /// — in pre-v7 manifests and for monolithic solves).
    #[serde(default)]
    pub decomposition: Option<DecompositionRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_record_round_trips_through_json() {
        let rec = SolveRecord {
            num_vars: 6,
            compiled_vars: 8,
            requested_reads: 2,
            reads: vec![ReadRecord {
                read: 0,
                sampler: "SA".into(),
                seed: 42,
                seeded: false,
                initial_energy: 10.0,
                best_energy: 1.0,
                final_energy: 0.5,
                sweeps: 100,
                proposals: 600,
                accepted: 150,
                acceptance_rate: 0.25,
                repair_steps: 3,
                polish_flips: 2,
                polish_improvement: 0.5,
                objective: 0.5,
                violation: 0.0,
                feasible: true,
                wall_ms: 1.25,
                attempts: 2,
                backoff_proposals: 1024,
                faults: vec![FaultRecord {
                    attempt: 0,
                    backend: "in-process".into(),
                    error: "transient backend failure (attempt 0)".into(),
                }],
                backend: "in-process".into(),
                speculated: false,
                cancelled_backend: None,
            }],
            failed_reads: vec![FailedReadRecord {
                read: 1,
                sampler: "SQA".into(),
                backend: "in-process".into(),
                faults: vec![FaultRecord {
                    attempt: 0,
                    backend: "in-process".into(),
                    error: "backend crashed".into(),
                }],
            }],
            backend_usage: vec![BackendUsageRecord {
                backend: "in-process".into(),
                reads: 1,
                failed_attempts: 2,
                speculative: 0,
                cancelled: 0,
                cost: 1.0,
                qpu_ms: 0.0,
            }],
            waves: vec![WaveRecord {
                wave: 0,
                first_read: 0,
                reads: 2,
                allocation: vec![WaveAllocation {
                    sampler: "SA".into(),
                    reads: 2,
                }],
                elite_seeded: 0,
                wall_ms: 2.5,
            }],
            termination: "exhausted".into(),
            timing: TimingRecord {
                cpu_ms: 2.5,
                qpu_ms: 0.0,
            },
            summary: SampleSetSummary {
                num_samples: 2,
                num_feasible: 1,
                best_objective: Some(0.5),
                worst_objective: Some(3.0),
                objective_spread: Some(2.5),
                best_feasible_objective: Some(0.5),
            },
            trace_digest: "0123456789abcdef".into(),
            decomposition: Some(DecompositionRecord {
                strategy: "multilevel".into(),
                window_cap: 32_768,
                levels: vec![DecompositionLevelRecord {
                    level: 0,
                    size: 8,
                    solved_vars: 112,
                    objective_before: 9.0,
                    objective_after: 1.5,
                    wall_ms: 4.0,
                }],
                windows: vec![DecompositionWindowRecord {
                    level: 0,
                    window: 0,
                    vars: 56,
                    objective_before: 2.0,
                    objective_after: 1.5,
                    accepted: true,
                    wall_ms: 1.0,
                }],
                sub_solves: 2,
            }),
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: SolveRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn pre_v6_solve_records_parse_with_an_empty_digest() {
        // `trace_digest` arrived with schema v6; older records omit it, so
        // this literal is a verbatim pre-v6 solve record.
        let json = r#"{
            "num_vars": 1,
            "compiled_vars": 1,
            "requested_reads": 0,
            "reads": [],
            "failed_reads": [],
            "backend_usage": [],
            "waves": [],
            "termination": "fast-exit",
            "timing": {"cpu_ms": 0.0, "qpu_ms": 0.0},
            "summary": {
                "num_samples": 0,
                "num_feasible": 0,
                "best_objective": null,
                "worst_objective": null,
                "objective_spread": null,
                "best_feasible_objective": null
            }
        }"#;
        let back: SolveRecord = serde_json::from_str(json).unwrap();
        assert_eq!(back.trace_digest, "");
        assert_eq!(back.decomposition, None);
        assert_eq!(back.termination, "fast-exit");
    }
}
