//! Trace sinks: where finished [`SolveRecord`]s go.

use std::sync::Mutex;

use crate::event::SolveRecord;

/// Destination for solve traces, owned by a solver as a trait object.
///
/// `enabled()` is the zero-cost gate: the solver checks it once per solve
/// and skips *all* record construction (observers, wave timers, summaries)
/// when it is `false`. Sinks must be `Send + Sync` — solves record from the
/// thread that called `solve()`, but solvers are shared across rayon
/// workers by the harness.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Whether records should be collected at all. Defaults to `true`;
    /// [`NoopSink`] overrides it to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one finished solve trace.
    fn record_solve(&self, record: SolveRecord);
}

/// The default sink: reports disabled, drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_solve(&self, _record: SolveRecord) {}
}

/// Buffers solve records in memory for later collection — the sink the
/// harness and CLI attach when `--telemetry` is requested.
#[derive(Debug, Default)]
pub struct MemorySink {
    solves: Mutex<Vec<SolveRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records buffered so far.
    pub fn len(&self) -> usize {
        self.solves.lock().expect("sink lock").len()
    }

    /// Whether no records have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all buffered records, in arrival order.
    pub fn take(&self) -> Vec<SolveRecord> {
        std::mem::take(&mut *self.solves.lock().expect("sink lock"))
    }
}

impl TraceSink for MemorySink {
    fn record_solve(&self, record: SolveRecord) {
        self.solves.lock().expect("sink lock").push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleSetSummary, TimingRecord};

    fn dummy_record() -> SolveRecord {
        SolveRecord {
            num_vars: 1,
            compiled_vars: 1,
            requested_reads: 1,
            reads: vec![],
            waves: vec![],
            timing: TimingRecord::default(),
            summary: SampleSetSummary::default(),
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record_solve(dummy_record()); // must not panic
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.enabled());
        assert!(sink.is_empty());
        sink.record_solve(dummy_record());
        sink.record_solve(dummy_record());
        assert_eq!(sink.len(), 2);
        let drained = sink.take();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
    }
}
