//! Trace sinks: where finished [`SolveRecord`]s go.

use std::sync::Mutex;

use crate::event::{LintRecord, SolveRecord};

/// Destination for solve traces, owned by a solver as a trait object.
///
/// `enabled()` is the zero-cost gate: the solver checks it once per solve
/// and skips *all* record construction (observers, wave timers, summaries)
/// when it is `false`. Sinks must be `Send + Sync` — solves record from the
/// thread that called `solve()`, but solvers are shared across rayon
/// workers by the harness.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Whether records should be collected at all. Defaults to `true`;
    /// [`NoopSink`] overrides it to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one finished solve trace.
    fn record_solve(&self, record: SolveRecord);

    /// Accepts the model linter's verdict on a CQM about to be solved.
    /// Defaults to dropping the record so existing sinks keep compiling.
    fn record_lint(&self, record: LintRecord) {
        let _ = record;
    }
}

/// The default sink: reports disabled, drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_solve(&self, _record: SolveRecord) {}
}

/// Buffers solve records in memory for later collection — the sink the
/// harness and CLI attach when `--telemetry` is requested.
#[derive(Debug, Default)]
pub struct MemorySink {
    solves: Mutex<Vec<SolveRecord>>,
    lints: Mutex<Vec<LintRecord>>,
}

/// Recover the guard from a poisoned sink mutex: records are append-only,
/// so a panic mid-push cannot leave them in a state worth refusing.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records buffered so far.
    pub fn len(&self) -> usize {
        lock(&self.solves).len()
    }

    /// Whether no records have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all buffered records, in arrival order.
    pub fn take(&self) -> Vec<SolveRecord> {
        std::mem::take(&mut *lock(&self.solves))
    }

    /// Drains and returns all buffered lint verdicts, in arrival order.
    pub fn take_lints(&self) -> Vec<LintRecord> {
        std::mem::take(&mut *lock(&self.lints))
    }
}

impl TraceSink for MemorySink {
    fn record_solve(&self, record: SolveRecord) {
        lock(&self.solves).push(record);
    }

    fn record_lint(&self, record: LintRecord) {
        lock(&self.lints).push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleSetSummary, TimingRecord};

    fn dummy_record() -> SolveRecord {
        SolveRecord {
            num_vars: 1,
            compiled_vars: 1,
            requested_reads: 1,
            reads: vec![],
            failed_reads: vec![],
            backend_usage: vec![],
            waves: vec![],
            termination: "exhausted".into(),
            timing: TimingRecord::default(),
            summary: SampleSetSummary::default(),
            trace_digest: String::new(),
            decomposition: None,
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record_solve(dummy_record()); // must not panic
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.enabled());
        assert!(sink.is_empty());
        sink.record_solve(dummy_record());
        sink.record_solve(dummy_record());
        assert_eq!(sink.len(), 2);
        let drained = sink.take();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn memory_sink_buffers_lint_records() {
        let sink = MemorySink::new();
        sink.record_lint(crate::event::LintRecord {
            num_vars: 4,
            errors: 1,
            warnings: 0,
            denied: true,
            diagnostics: vec![crate::event::LintDiagnosticRecord {
                rule: "penalty-below-bound".into(),
                severity: "error".into(),
                span: "model".into(),
                message: "weight 0.5 below bound 3".into(),
            }],
        });
        let lints = sink.take_lints();
        assert_eq!(lints.len(), 1);
        assert!(lints[0].denied);
        assert!(sink.take_lints().is_empty());
        // Solve records live in their own buffer.
        assert!(sink.is_empty());
    }
}
