//! The per-read accumulator samplers report through.

use std::time::Instant;

use crate::event::ReadRecord;

/// Collects one [`ReadRecord`] as a read progresses through seed repair →
/// anneal → polish → repair.
///
/// A disabled observer holds no record and every report is a cheap no-op,
/// so the solver can pass one down unconditionally; cost is a branch per
/// *call site* (a handful per read), never per sweep. Observers only read
/// statistics the samplers already produced — they draw no randomness and
/// influence nothing, preserving the determinism contract.
#[derive(Debug)]
pub struct ReadObserver {
    rec: Option<Box<ReadRecord>>,
    started: Option<Instant>,
}

impl ReadObserver {
    /// An observer that records nothing (the `NoopSink` path).
    pub fn disabled() -> Self {
        Self {
            rec: None,
            started: None,
        }
    }

    /// An observer that will produce a [`ReadRecord`] for read `read` with
    /// derived RNG seed `seed`; `seeded` marks reads started from a
    /// caller-provided candidate state. Wall-time measurement starts now.
    pub fn recording(read: usize, seed: u64, seeded: bool) -> Self {
        Self {
            rec: Some(Box::new(ReadRecord {
                read,
                sampler: String::new(),
                seed,
                seeded,
                initial_energy: 0.0,
                best_energy: 0.0,
                final_energy: 0.0,
                sweeps: 0,
                proposals: 0,
                accepted: 0,
                acceptance_rate: 0.0,
                repair_steps: 0,
                polish_flips: 0,
                polish_improvement: 0.0,
                objective: 0.0,
                violation: 0.0,
                feasible: false,
                wall_ms: 0.0,
                attempts: 1,
                backoff_proposals: 0,
                faults: Vec::new(),
                backend: String::new(),
                speculated: false,
                cancelled_backend: None,
            })),
            started: Some(Instant::now()),
        }
    }

    /// Whether this observer is collecting a record.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Reports the anneal stage: which sampler ran, the penalized energy it
    /// started from, the best it reached, and its proposal statistics.
    pub fn anneal(
        &mut self,
        sampler: &str,
        initial_energy: f64,
        best_energy: f64,
        sweeps: u64,
        proposals: u64,
        accepted: u64,
    ) {
        if let Some(rec) = &mut self.rec {
            rec.sampler = sampler.to_string();
            rec.initial_energy = initial_energy;
            rec.best_energy = best_energy;
            rec.sweeps = sweeps;
            rec.proposals = proposals;
            rec.accepted = accepted;
        }
    }

    /// Adds feasibility-repair flips (called for seed repair and again for
    /// post-polish repair; contributions accumulate).
    pub fn repair(&mut self, steps: u64) {
        if let Some(rec) = &mut self.rec {
            rec.repair_steps += steps;
        }
    }

    /// Adds a greedy-polish pass: flips applied and penalized-energy
    /// reduction achieved (accumulates across passes).
    pub fn polish(&mut self, flips: u64, improvement: f64) {
        if let Some(rec) = &mut self.rec {
            rec.polish_flips += flips;
            rec.polish_improvement += improvement;
        }
    }

    /// Finalizes the record: stamps the final penalized energy, derives the
    /// acceptance rate, and stops the wall clock. Returns `None` for a
    /// disabled observer.
    ///
    /// `objective` / `violation` / `feasible` stay zeroed here — the solver
    /// backfills them once states are rescored against the original CQM.
    pub fn finish(self, final_energy: f64) -> Option<ReadRecord> {
        let started = self.started;
        self.rec.map(|mut rec| {
            rec.final_energy = final_energy;
            rec.acceptance_rate = if rec.proposals > 0 {
                rec.accepted as f64 / rec.proposals as f64
            } else {
                0.0
            };
            rec.wall_ms = started.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
            *rec
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_reports_nothing() {
        let mut obs = ReadObserver::disabled();
        assert!(!obs.is_recording());
        obs.anneal("SA", 1.0, 0.0, 10, 100, 50);
        obs.repair(5);
        obs.polish(2, 0.5);
        assert!(obs.finish(0.0).is_none());
    }

    #[test]
    fn recording_observer_accumulates_stages() {
        let mut obs = ReadObserver::recording(3, 99, true);
        assert!(obs.is_recording());
        obs.repair(4); // seed repair
        obs.anneal("SQA", 12.0, 2.0, 50, 200, 80);
        obs.polish(3, 1.0);
        obs.repair(2); // post-polish repair
        obs.polish(1, 0.25);
        let rec = obs
            .finish(0.75)
            .expect("recording observer yields a record");
        assert_eq!(rec.read, 3);
        assert_eq!(rec.seed, 99);
        assert!(rec.seeded);
        assert_eq!(rec.sampler, "SQA");
        assert_eq!(rec.repair_steps, 6);
        assert_eq!(rec.polish_flips, 4);
        assert!((rec.polish_improvement - 1.25).abs() < 1e-12);
        assert!((rec.acceptance_rate - 0.4).abs() < 1e-12);
        assert_eq!(rec.final_energy, 0.75);
        assert!(rec.wall_ms >= 0.0);
    }

    #[test]
    fn zero_proposals_has_zero_acceptance_rate() {
        let obs = ReadObserver::recording(0, 0, false);
        let rec = obs.finish(0.0).unwrap();
        assert_eq!(rec.acceptance_rate, 0.0);
    }
}
