#![forbid(unsafe_code)]
//! # qlrb-telemetry — solve instrumentation and run manifests
//!
//! The paper's central evidence is *where time and quality come from* inside
//! the hybrid solve: Table V splits CPU wall time from QPU access time, and
//! each configuration is run several times with the best kept. This crate is
//! the substrate that makes those quantities observable in our stand-in
//! solver without perturbing it:
//!
//! * [`event`] — the trace vocabulary: one [`event::ReadRecord`] per
//!   portfolio read (sampler kind, seed, energies, acceptance rate, repair
//!   and polish statistics, wall time), [`event::WaveRecord`] per parallel
//!   wave, and one [`event::SolveRecord`] per `solve()` call tying them to
//!   the CPU/QPU split and a [`event::SampleSetSummary`].
//! * [`observer`] — [`observer::ReadObserver`], the lightweight per-read
//!   accumulator the samplers report through. A disabled observer is a
//!   no-op shell (an `Option` that is `None`), so the hot path pays one
//!   branch per *read*, not per sweep.
//! * [`sink`] — [`sink::TraceSink`], the trait-object sink a solver owns.
//!   [`sink::NoopSink`] (the default) reports `enabled() == false`, which
//!   gates all record construction; [`sink::MemorySink`] buffers records
//!   for harnesses and the CLI.
//! * [`fingerprint`] — the determinism-audit surface: FNV-1a fingerprints
//!   of each read's deterministic fields, folded into the solve-level
//!   `trace_digest` that manifest schema v6 records and `qlrb trace diff`
//!   / `qlrb audit` consume.
//! * [`manifest`] — [`manifest::RunManifest`], the JSON run manifest the
//!   harness and CLI write next to their CSV outputs: command line,
//!   `git describe`, per-case solve traces, simulator counters, and
//!   Table-V-style per-method timing medians.
//!
//! Determinism contract: nothing in this crate draws randomness or feeds
//! back into a solve. Observers only *read* statistics the samplers already
//! computed, so a recording sink and [`sink::NoopSink`] produce byte-identical
//! sample sets (asserted by the workspace determinism tests).

pub mod event;
pub mod fingerprint;
pub mod manifest;
pub mod observer;
pub mod sink;

pub use event::{
    BackendUsageRecord, DecompositionLevelRecord, DecompositionRecord, DecompositionWindowRecord,
    FailedReadRecord, FaultRecord, LintDiagnosticRecord, LintRecord, ReadRecord, SampleSetSummary,
    SolveRecord, SolverConfig, TimingRecord, WaveAllocation, WaveRecord,
};
pub use fingerprint::{
    failed_read_fingerprint, read_fingerprint, solve_trace_digest, FINGERPRINT_VERSION,
};
pub use manifest::{
    median_ms, percentile_ms, CaseTrace, ConfigSnapshot, HarnessSnapshot, MethodTiming,
    MethodTrace, RunManifest, ServerLoadRecord, ServerRequestRecord, SimConfigSnapshot,
    SimCounters, MANIFEST_SCHEMA_VERSION,
};
pub use observer::ReadObserver;
pub use sink::{MemorySink, NoopSink, TraceSink};
