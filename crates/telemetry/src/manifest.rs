//! The JSON run manifest: the self-describing artifact a harness or CLI run
//! writes next to its CSV outputs.
//!
//! A manifest ties together *what ran* (command line, solver/harness
//! configuration, `git describe` of the working tree), *what it produced*
//! (per-case, per-method [`SolveRecord`] traces and simulator counters),
//! and the Table-V-style headline: per-method timing medians across cases.

use serde::{Deserialize, Serialize};

use crate::event::{SolveRecord, SolverConfig};

/// Current manifest schema version; bump on breaking layout changes.
///
/// v2: per-wave sampler allocations + elite-seed counts (`waves[].allocation`,
/// `waves[].elite_seeded`), termination reason per solve, adaptive-scheduler
/// solver-config fields, and the top-level `rayon_threads`.
///
/// v3: fault-tolerance surface — per-read submission attempt counts, backoff
/// charges and fault lists (`reads[].attempts`, `reads[].backoff_proposals`,
/// `reads[].faults`), exhausted reads (`failed_reads`), and the retry budget
/// in the solver config (`max_retries`, `read_deadline_proposals`,
/// `backend`). The termination vocabulary gains `"backend-exhausted"`.
///
/// v4: batched-kernel surface — the solver config records whether the
/// batched bitset fast path ran and at what width (`batched`,
/// `batch_width`, `kernel`).
///
/// v5: backend-federation surface — per-read dispatch identity and
/// speculation outcome (`reads[].backend`, `reads[].speculated`,
/// `reads[].cancelled_backend`), per-attempt fault backends
/// (`faults[].backend`, `failed_reads[].backend`), per-solve dispatch
/// accounting (`backend_usage`), and the pool in the solver config
/// (`backends`, `speculate`).
///
/// v6: determinism-audit surface — every solve carries a `trace_digest`,
/// the deterministic fold of its per-read fingerprints (see
/// [`crate::fingerprint`]); `validate` recomputes and cross-checks it, and
/// `qlrb trace diff` / `qlrb audit` consume it.
///
/// v7: decomposition surface — a solve orchestrated by the decomposing
/// frontend carries `decomposition` (strategy, window cap, per-level
/// objective progression, per-window fold-back outcomes, sub-solve count);
/// monolithic solves serialize it as `null` and pre-v7 records parse with
/// `None`. The record folds into the trace digest only when present, so
/// every digest sealed before v7 recomputes unchanged.
///
/// v8: service surface — a manifest written by the `qlrb serve` load path
/// carries `server` (per-request admission/latency records, cache hit and
/// miss totals, queue high-water, rejection counts, and the p50/p99 +
/// throughput headline). Batch manifests serialize it as `null` and pre-v8
/// manifests parse with `None`; a server manifest may have zero `cases`
/// (per-request traces live in `server.requests`) unless the load
/// generator ran with full traces enabled.
pub const MANIFEST_SCHEMA_VERSION: u32 = 8;

/// What configuration produced the run: whichever of the three layers were
/// in play (a CLI rebalance records a solver config; a harness run records
/// its knobs; a simulate run records the simulator parameters).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfigSnapshot {
    /// Hybrid solver configuration, when a quantum method ran.
    pub solver: Option<SolverConfig>,
    /// Harness knobs, when the run came from the experiment harness.
    pub harness: Option<HarnessSnapshot>,
    /// Simulator parameters, when `chameleon-sim` ran.
    pub sim: Option<SimConfigSnapshot>,
}

/// The harness-level knobs (`HarnessConfig`) behind a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarnessSnapshot {
    /// Base RNG seed.
    pub seed: u64,
    /// Reads per quantum solve.
    pub reads: usize,
    /// Sweeps per read.
    pub sweeps: usize,
}

/// The `chameleon-sim` parameters behind a simulated case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfigSnapshot {
    /// Compute threads per node.
    pub comp_threads: usize,
    /// Per-message latency.
    pub comm_latency: f64,
    /// Transfer cost per unit load.
    pub comm_cost_per_load: f64,
    /// BSP iterations simulated.
    pub iterations: usize,
}

/// One rebalancing method's trace within a case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodTrace {
    /// Method label as the harness prints it (e.g. `"Q_CQM1"`).
    pub method: String,
    /// The hybrid solve trace behind the method's row.
    pub solve: SolveRecord,
}

/// Message and synchronisation counters from one `chameleon-sim` run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimCounters {
    /// BSP iterations simulated.
    pub iterations: usize,
    /// Migration messages sent (one per task-bundle transfer edge).
    pub migration_messages: usize,
    /// Matching receives completed.
    pub recv_messages: usize,
    /// Total time processes spent blocked at iteration barriers.
    pub barrier_wait_total: f64,
    /// Worst single barrier wait.
    pub barrier_wait_max: f64,
    /// Total time communication links were busy.
    pub comm_busy_total: f64,
    /// End-to-end makespan of the simulated run.
    pub total_makespan: f64,
}

/// One request's journey through the `qlrb serve` admission pipeline
/// (schema v8): what was asked, whether it was admitted, how the model
/// cache treated it, and how long it took end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerRequestRecord {
    /// Client-assigned request id (unique within the load run).
    pub request: u64,
    /// Tenant label the request was submitted under.
    pub tenant: String,
    /// Workload case label (e.g. `"mxm-64"` or `"samoa-small"`).
    pub workload: String,
    /// Requested formulation (`"qcqm1"` / `"qcqm2"`).
    pub method: String,
    /// `"completed"` or `"rejected"` (shed by admission control).
    pub outcome: String,
    /// `"hit"` / `"miss"` for completed solves; empty for rejected
    /// requests, which never reach the model cache.
    pub cache: String,
    /// Queue depth observed at admission time (rejections record the
    /// depth that triggered the shed).
    pub queue_depth: usize,
    /// End-to-end latency as the client saw it, milliseconds.
    pub latency_ms: f64,
    /// Sealed trace digest of the underlying solve; empty when rejected.
    pub trace_digest: String,
}

/// Aggregate service-load results for one load-generator run (schema v8):
/// the admission/cache/queue counters and the latency headline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerLoadRecord {
    /// Worker threads the daemon solved on.
    pub workers: usize,
    /// Bounded-queue capacity; depth beyond this sheds load.
    pub queue_capacity: usize,
    /// Model-cache capacity, in compiled models.
    pub cache_capacity: usize,
    /// Requests that completed with a plan.
    pub completed: usize,
    /// Requests shed by admission control (structured 429-style reply).
    pub rejected: usize,
    /// Completed solves served from a cached compiled model.
    pub cache_hits: usize,
    /// Completed solves that compiled their model on the miss path.
    pub cache_misses: usize,
    /// Highest queue depth observed across the run.
    pub max_queue_depth: usize,
    /// Median end-to-end latency over completed requests, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile end-to-end latency (nearest-rank), milliseconds.
    pub p99_latency_ms: f64,
    /// Completed requests per second of load-run wall time.
    pub throughput_rps: f64,
    /// Load-run wall time, milliseconds.
    pub wall_ms: f64,
    /// Per-request records, in request-id order.
    pub requests: Vec<ServerRequestRecord>,
}

/// One workload case: its solver traces and, when the case was simulated,
/// the runtime counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseTrace {
    /// Case label (e.g. `"sam(oa)2-osc"` or an input path).
    pub label: String,
    /// Solve traces, one per traced method (classical methods have none).
    pub methods: Vec<MethodTrace>,
    /// Simulator counters, when the case was run through `chameleon-sim`.
    pub sim: Option<SimCounters>,
}

/// Per-method timing medians across cases — the manifest's Table-V row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodTiming {
    /// Method label.
    pub method: String,
    /// Number of solves the medians cover.
    pub solves: usize,
    /// Median classical wall time, milliseconds.
    pub median_cpu_ms: f64,
    /// Median simulated QPU access time, milliseconds.
    pub median_qpu_ms: f64,
}

/// The run manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema: u32,
    /// The command (or harness entry point) that produced the run.
    pub command: String,
    /// Unix timestamp of manifest creation, seconds.
    pub generated_unix_s: u64,
    /// `git describe --tags --always --dirty` of the source tree, when the
    /// run happened inside a git checkout.
    pub git_describe: Option<String>,
    /// Size of the rayon thread pool the run actually used (parallel waves
    /// and SQA slice sweeps are bounded by it, so timings are only
    /// comparable across runs with the same value).
    pub rayon_threads: usize,
    /// Configuration snapshot (solver config, harness knobs, sim params).
    pub config: ConfigSnapshot,
    /// Traced cases, in run order.
    pub cases: Vec<CaseTrace>,
    /// Per-method timing medians over all cases (see [`RunManifest::finalize`]).
    pub timing: Vec<MethodTiming>,
    /// Service-load results, when the manifest came from the `qlrb serve`
    /// load path (schema v8). Batch runs leave it `None`; pre-v8
    /// manifests parse with the default.
    #[serde(default)]
    pub server: Option<ServerLoadRecord>,
}

/// Median of a slice in milliseconds; even lengths average the middle pair.
/// Empty input yields 0.
pub fn median_ms(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Nearest-rank percentile of a slice in milliseconds: the smallest value
/// with at least `pct`% of the samples at or below it. Empty input yields
/// 0; `pct` is clamped to (0, 100].
pub fn percentile_ms(values: &[f64], pct: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pct = pct.clamp(f64::EPSILON, 100.0);
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// `git describe --tags --always --dirty`, if the current directory is a
/// git checkout with git on the PATH.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--tags", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!text.is_empty()).then_some(text)
}

impl RunManifest {
    /// A manifest stamped with the current time and git description.
    pub fn new(command: &str, config: ConfigSnapshot) -> Self {
        let generated_unix_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self {
            schema: MANIFEST_SCHEMA_VERSION,
            command: command.to_string(),
            generated_unix_s,
            git_describe: git_describe(),
            // Callers that own a rayon pool overwrite this with
            // `rayon::current_num_threads()`; the std count is the default
            // pool size, so it matches unless the pool was customized.
            rayon_threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            config,
            cases: Vec::new(),
            timing: Vec::new(),
            server: None,
        }
    }

    /// Recomputes [`RunManifest::timing`] from the current cases: for every
    /// method, the median CPU and QPU milliseconds across its solves, in
    /// order of first appearance. Also seals any solve record still missing
    /// its `trace_digest` (records emitted by the solver arrive pre-sealed;
    /// hand-assembled ones are stamped here).
    pub fn finalize(&mut self) {
        for case in &mut self.cases {
            for m in &mut case.methods {
                if m.solve.trace_digest.is_empty() {
                    crate::fingerprint::seal(&mut m.solve);
                }
            }
        }
        let mut methods: Vec<String> = Vec::new();
        for case in &self.cases {
            for m in &case.methods {
                if !methods.contains(&m.method) {
                    methods.push(m.method.clone());
                }
            }
        }
        self.timing = methods
            .into_iter()
            .map(|method| {
                let (mut cpu, mut qpu) = (Vec::new(), Vec::new());
                for case in &self.cases {
                    for m in case.methods.iter().filter(|m| m.method == method) {
                        cpu.push(m.solve.timing.cpu_ms);
                        qpu.push(m.solve.timing.qpu_ms);
                    }
                }
                MethodTiming {
                    method,
                    solves: cpu.len(),
                    median_cpu_ms: median_ms(&cpu),
                    median_qpu_ms: median_ms(&qpu),
                }
            })
            .collect();
    }

    /// Structural validation: schema version, non-empty identity, at least
    /// one case with content, well-formed read records, and timing rows
    /// covering every traced method. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != MANIFEST_SCHEMA_VERSION {
            return Err(format!(
                "schema version {} (expected {MANIFEST_SCHEMA_VERSION})",
                self.schema
            ));
        }
        if self.command.is_empty() {
            return Err("empty command".into());
        }
        if self.cases.is_empty() && self.server.is_none() {
            return Err("no cases recorded".into());
        }
        for case in &self.cases {
            if case.label.is_empty() {
                return Err("case with empty label".into());
            }
            if case.methods.is_empty() && case.sim.is_none() {
                return Err(format!("case '{}' has neither methods nor sim", case.label));
            }
            for m in &case.methods {
                let s = &m.solve;
                for w in &s.waves {
                    let allocated: usize = w.allocation.iter().map(|a| a.reads).sum();
                    if allocated != w.reads {
                        return Err(format!(
                            "case '{}' method '{}' wave {}: allocation covers {} of {} reads",
                            case.label, m.method, w.wave, allocated, w.reads
                        ));
                    }
                }
                if s.termination.is_empty() {
                    return Err(format!(
                        "case '{}' method '{}': empty termination reason",
                        case.label, m.method
                    ));
                }
                if s.reads.len() > s.requested_reads && s.requested_reads > 0 {
                    return Err(format!(
                        "case '{}' method '{}': {} reads exceed the {} requested",
                        case.label,
                        m.method,
                        s.reads.len(),
                        s.requested_reads
                    ));
                }
                for r in &s.reads {
                    if r.sampler.is_empty() {
                        return Err(format!(
                            "case '{}' method '{}' read {}: empty sampler",
                            case.label, m.method, r.read
                        ));
                    }
                    if !r.wall_ms.is_finite() || r.wall_ms < 0.0 {
                        return Err(format!(
                            "case '{}' method '{}' read {}: bad wall_ms {}",
                            case.label, m.method, r.read, r.wall_ms
                        ));
                    }
                    if !(0.0..=1.0).contains(&r.acceptance_rate) {
                        return Err(format!(
                            "case '{}' method '{}' read {}: acceptance_rate {} out of [0,1]",
                            case.label, m.method, r.read, r.acceptance_rate
                        ));
                    }
                    if r.attempts == 0 {
                        return Err(format!(
                            "case '{}' method '{}' read {}: zero submission attempts",
                            case.label, m.method, r.read
                        ));
                    }
                }
                if s.requested_reads > 0 && s.reads.len() + s.failed_reads.len() > s.requested_reads
                {
                    return Err(format!(
                        "case '{}' method '{}': {} completed + {} failed reads exceed \
                         the {} requested",
                        case.label,
                        m.method,
                        s.reads.len(),
                        s.failed_reads.len(),
                        s.requested_reads
                    ));
                }
                for f in &s.failed_reads {
                    if f.faults.is_empty() {
                        return Err(format!(
                            "case '{}' method '{}' failed read {}: no faults recorded",
                            case.label, m.method, f.read
                        ));
                    }
                }
                if !s.backend_usage.is_empty() {
                    let executed: usize = s.backend_usage.iter().map(|u| u.reads).sum();
                    if executed != s.reads.len() {
                        return Err(format!(
                            "case '{}' method '{}': backend usage covers {} of {} reads",
                            case.label,
                            m.method,
                            executed,
                            s.reads.len()
                        ));
                    }
                    for u in &s.backend_usage {
                        if u.backend.is_empty() {
                            return Err(format!(
                                "case '{}' method '{}': backend usage entry with empty id",
                                case.label, m.method
                            ));
                        }
                        if u.speculative > u.reads {
                            return Err(format!(
                                "case '{}' method '{}' backend '{}': {} speculative wins \
                                 exceed {} reads",
                                case.label, m.method, u.backend, u.speculative, u.reads
                            ));
                        }
                        if !u.cost.is_finite() || u.cost < 0.0 {
                            return Err(format!(
                                "case '{}' method '{}' backend '{}': bad cost {}",
                                case.label, m.method, u.backend, u.cost
                            ));
                        }
                        if !u.qpu_ms.is_finite() || u.qpu_ms < 0.0 {
                            return Err(format!(
                                "case '{}' method '{}' backend '{}': bad qpu_ms {}",
                                case.label, m.method, u.backend, u.qpu_ms
                            ));
                        }
                    }
                }
                // The decomposition contract (schema v7): every window the
                // frontend solved must have respected the declared cap.
                if let Some(d) = &s.decomposition {
                    if d.window_cap == 0 {
                        return Err(format!(
                            "case '{}' method '{}': decomposition with a zero window cap",
                            case.label, m.method
                        ));
                    }
                    for w in &d.windows {
                        if w.vars > d.window_cap {
                            return Err(format!(
                                "case '{}' method '{}': decomposition window {}/{} has {} \
                                 vars, above the declared cap {}",
                                case.label, m.method, w.level, w.window, w.vars, d.window_cap
                            ));
                        }
                    }
                }
                // The determinism-audit contract (schema v6): the recorded
                // digest must recompute from the deterministic fields.
                let expected = crate::fingerprint::solve_trace_digest(s);
                if s.trace_digest != expected {
                    return Err(format!(
                        "case '{}' method '{}': trace_digest '{}' does not match the \
                         recomputed '{expected}' (stale or hand-edited manifest?)",
                        case.label, m.method, s.trace_digest
                    ));
                }
            }
        }
        // The service contract (schema v8): admission accounting must add
        // up — every request either completed or was shed, every completed
        // solve either hit or missed the model cache, and the latency
        // headline is well-formed.
        if let Some(srv) = &self.server {
            if srv.completed + srv.rejected != srv.requests.len() {
                return Err(format!(
                    "server: {} completed + {} rejected does not cover {} request(s)",
                    srv.completed,
                    srv.rejected,
                    srv.requests.len()
                ));
            }
            if srv.cache_hits + srv.cache_misses != srv.completed {
                return Err(format!(
                    "server: {} cache hits + {} misses do not cover {} completed solve(s)",
                    srv.cache_hits, srv.cache_misses, srv.completed
                ));
            }
            if srv.queue_capacity == 0 {
                return Err("server: zero queue capacity".into());
            }
            if srv.workers == 0 {
                return Err("server: zero workers".into());
            }
            for stat in [
                ("p50_latency_ms", srv.p50_latency_ms),
                ("p99_latency_ms", srv.p99_latency_ms),
                ("throughput_rps", srv.throughput_rps),
                ("wall_ms", srv.wall_ms),
            ] {
                if !stat.1.is_finite() || stat.1 < 0.0 {
                    return Err(format!("server: bad {} {}", stat.0, stat.1));
                }
            }
            if srv.p50_latency_ms > srv.p99_latency_ms {
                return Err(format!(
                    "server: p50 {} ms above p99 {} ms",
                    srv.p50_latency_ms, srv.p99_latency_ms
                ));
            }
            let (mut completed, mut rejected, mut hits, mut misses) = (0, 0, 0, 0);
            for r in &srv.requests {
                match (r.outcome.as_str(), r.cache.as_str()) {
                    ("completed", "hit") => {
                        completed += 1;
                        hits += 1;
                    }
                    ("completed", "miss") => {
                        completed += 1;
                        misses += 1;
                    }
                    ("rejected", "") => rejected += 1,
                    _ => {
                        return Err(format!(
                            "server request {}: bad outcome/cache pair '{}'/'{}'",
                            r.request, r.outcome, r.cache
                        ));
                    }
                }
                if !r.latency_ms.is_finite() || r.latency_ms < 0.0 {
                    return Err(format!(
                        "server request {}: bad latency_ms {}",
                        r.request, r.latency_ms
                    ));
                }
                if r.outcome == "rejected" && !r.trace_digest.is_empty() {
                    return Err(format!(
                        "server request {}: rejected request carries a trace digest",
                        r.request
                    ));
                }
                if r.queue_depth > srv.max_queue_depth {
                    return Err(format!(
                        "server request {}: queue depth {} above recorded high-water {}",
                        r.request, r.queue_depth, srv.max_queue_depth
                    ));
                }
            }
            if completed != srv.completed
                || rejected != srv.rejected
                || hits != srv.cache_hits
                || misses != srv.cache_misses
            {
                return Err(format!(
                    "server: per-request records ({completed} completed / {rejected} \
                     rejected / {hits} hits / {misses} misses) disagree with the \
                     totals ({} / {} / {} / {})",
                    srv.completed, srv.rejected, srv.cache_hits, srv.cache_misses
                ));
            }
        }
        for case in &self.cases {
            for m in &case.methods {
                if !self.timing.iter().any(|t| t.method == m.method) {
                    return Err(format!(
                        "method '{}' missing from timing medians (manifest not finalized?)",
                        m.method
                    ));
                }
            }
        }
        Ok(())
    }

    /// Pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes") // qlrb-lint: allow(no-unwrap)
    }

    /// Parses a manifest from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("manifest parse error: {e}"))
    }

    /// Human-readable digest: one header line, the timing medians, then a
    /// per-case breakdown of reads, feasibility, and simulator counters.
    pub fn summarize(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let git = self.git_describe.as_deref().unwrap_or("unknown");
        let _ = writeln!(out, "run manifest: {} (source {git})", self.command);
        let _ = writeln!(
            out,
            "  {} case(s), schema v{}, generated at unix {}",
            self.cases.len(),
            self.schema,
            self.generated_unix_s
        );
        for t in &self.timing {
            let _ = writeln!(
                out,
                "  {:<10} median cpu {:>9.1} ms   qpu {:>6.1} ms   ({} solve{})",
                t.method,
                t.median_cpu_ms,
                t.median_qpu_ms,
                t.solves,
                if t.solves == 1 { "" } else { "s" }
            );
        }
        if let Some(srv) = &self.server {
            let _ = writeln!(
                out,
                "  server: {} request(s), {} completed / {} rejected, cache {} \
                 hit(s) / {} miss(es), peak queue {}/{} on {} worker(s)",
                srv.requests.len(),
                srv.completed,
                srv.rejected,
                srv.cache_hits,
                srv.cache_misses,
                srv.max_queue_depth,
                srv.queue_capacity,
                srv.workers
            );
            let _ = writeln!(
                out,
                "    latency p50 {:.1} ms, p99 {:.1} ms, {:.1} req/s over {:.1} ms",
                srv.p50_latency_ms, srv.p99_latency_ms, srv.throughput_rps, srv.wall_ms
            );
        }
        for case in &self.cases {
            let _ = writeln!(out, "  case {}", case.label);
            for m in &case.methods {
                let s = &m.solve;
                let mean_accept = if s.reads.is_empty() {
                    0.0
                } else {
                    s.reads.iter().map(|r| r.acceptance_rate).sum::<f64>() / s.reads.len() as f64
                };
                let _ = writeln!(
                    out,
                    "    {:<10} {} read(s), {}/{} feasible, mean acceptance {:.3}, \
                     repair {} step(s), cpu {:.1} ms, stopped: {}, digest {}",
                    m.method,
                    s.reads.len(),
                    s.summary.num_feasible,
                    s.summary.num_samples,
                    mean_accept,
                    s.reads.iter().map(|r| r.repair_steps).sum::<u64>(),
                    s.timing.cpu_ms,
                    s.termination,
                    s.trace_digest
                );
                if let Some(d) = &s.decomposition {
                    let _ = writeln!(
                        out,
                        "      decomposition: {} strategy, window cap {}, {} sub-solve(s)",
                        d.strategy, d.window_cap, d.sub_solves
                    );
                    for l in &d.levels {
                        let _ = writeln!(
                            out,
                            "        level {:>2}  size {:>6}  solved vars {:>7}  \
                             objective {:>12.3} -> {:>12.3}  {:>8.1} ms",
                            l.level,
                            l.size,
                            l.solved_vars,
                            l.objective_before,
                            l.objective_after,
                            l.wall_ms
                        );
                    }
                    for w in &d.windows {
                        let _ = writeln!(
                            out,
                            "        window {}/{}  vars {:>6}  objective {:>12.3} -> {:>12.3}  \
                             {}  {:>8.1} ms",
                            w.level,
                            w.window,
                            w.vars,
                            w.objective_before,
                            w.objective_after,
                            if w.accepted { "accepted" } else { "rejected" },
                            w.wall_ms
                        );
                    }
                }
            }
            if let Some(sim) = &case.sim {
                let _ = writeln!(
                    out,
                    "    sim: {} iteration(s), {} migration msg(s), barrier wait {:.2} \
                     (max {:.2}), comm busy {:.2}, makespan {:.2}",
                    sim.iterations,
                    sim.migration_messages,
                    sim.barrier_wait_total,
                    sim.barrier_wait_max,
                    sim.comm_busy_total,
                    sim.total_makespan
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleSetSummary, TimingRecord};

    fn solve_record(cpu_ms: f64) -> SolveRecord {
        SolveRecord {
            num_vars: 4,
            compiled_vars: 4,
            requested_reads: 1,
            reads: vec![crate::event::ReadRecord {
                read: 0,
                sampler: "SA".into(),
                seed: 1,
                seeded: false,
                initial_energy: 1.0,
                best_energy: 0.0,
                final_energy: 0.0,
                sweeps: 10,
                proposals: 40,
                accepted: 10,
                acceptance_rate: 0.25,
                repair_steps: 0,
                polish_flips: 0,
                polish_improvement: 0.0,
                objective: 0.0,
                violation: 0.0,
                feasible: true,
                wall_ms: cpu_ms,
                attempts: 1,
                backoff_proposals: 0,
                faults: vec![],
                backend: "in-process".into(),
                speculated: false,
                cancelled_backend: None,
            }],
            failed_reads: vec![],
            backend_usage: vec![crate::event::BackendUsageRecord {
                backend: "in-process".into(),
                reads: 1,
                failed_attempts: 0,
                speculative: 0,
                cancelled: 0,
                cost: 1.0,
                qpu_ms: 0.0,
            }],
            waves: vec![],
            termination: "exhausted".into(),
            timing: TimingRecord {
                cpu_ms,
                qpu_ms: 0.0,
            },
            summary: SampleSetSummary {
                num_samples: 1,
                num_feasible: 1,
                best_objective: Some(0.0),
                worst_objective: Some(0.0),
                objective_spread: Some(0.0),
                best_feasible_objective: Some(0.0),
            },
            trace_digest: String::new(), // sealed by finalize()
            decomposition: None,
        }
    }

    fn manifest_with_cases() -> RunManifest {
        let mut m = RunManifest::new(
            "test-run",
            ConfigSnapshot {
                harness: Some(HarnessSnapshot {
                    seed: 7,
                    reads: 1,
                    sweeps: 100,
                }),
                ..Default::default()
            },
        );
        for (label, cpu) in [("case-a", 10.0), ("case-b", 30.0), ("case-c", 20.0)] {
            m.cases.push(CaseTrace {
                label: label.into(),
                methods: vec![MethodTrace {
                    method: "Q_CQM1".into(),
                    solve: solve_record(cpu),
                }],
                sim: None,
            });
        }
        m.finalize();
        m
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median_ms(&[]), 0.0);
        assert_eq!(median_ms(&[5.0]), 5.0);
        assert_eq!(median_ms(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_ms(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn finalize_computes_per_method_medians() {
        let m = manifest_with_cases();
        assert_eq!(m.timing.len(), 1);
        assert_eq!(m.timing[0].method, "Q_CQM1");
        assert_eq!(m.timing[0].solves, 3);
        assert_eq!(m.timing[0].median_cpu_ms, 20.0);
    }

    #[test]
    fn validates_and_round_trips() {
        let m = manifest_with_cases();
        m.validate().expect("well-formed manifest");
        let back = RunManifest::from_json(&m.to_json_pretty()).unwrap();
        assert_eq!(back, m);
        assert!(back.summarize().contains("Q_CQM1"));
    }

    #[test]
    fn rejects_unfinalized_and_malformed() {
        let mut m = manifest_with_cases();
        m.timing.clear();
        assert!(m.validate().unwrap_err().contains("timing"));

        let mut m = manifest_with_cases();
        m.cases.clear();
        assert!(m.validate().unwrap_err().contains("no cases"));

        let mut m = manifest_with_cases();
        m.cases[0].methods[0].solve.reads[0].acceptance_rate = 1.5;
        assert!(m.validate().unwrap_err().contains("acceptance_rate"));

        let mut m = manifest_with_cases();
        m.schema = 999;
        assert!(m.validate().unwrap_err().contains("schema"));

        let mut m = manifest_with_cases();
        m.cases[0].methods[0]
            .solve
            .waves
            .push(crate::event::WaveRecord {
                wave: 0,
                first_read: 0,
                reads: 2,
                allocation: vec![],
                elite_seeded: 0,
                wall_ms: 1.0,
            });
        assert!(m.validate().unwrap_err().contains("allocation"));

        let mut m = manifest_with_cases();
        m.cases[0].methods[0].solve.termination.clear();
        assert!(m.validate().unwrap_err().contains("termination"));
    }

    #[test]
    fn rejects_a_stale_trace_digest() {
        // A field with no structural validation of its own (the read's
        // seed) still invalidates the manifest through the digest check.
        let mut m = manifest_with_cases();
        m.cases[0].methods[0].solve.reads[0].seed = 999;
        assert!(m.validate().unwrap_err().contains("trace_digest"));

        // Wall-clock noise is explicitly outside the digest.
        let mut m = manifest_with_cases();
        m.cases[0].methods[0].solve.reads[0].wall_ms = 12345.0;
        m.validate().expect("wall clock is not fingerprinted");
    }

    #[test]
    fn finalize_seals_only_unsealed_records() {
        let m = manifest_with_cases();
        let sealed = m.cases[0].methods[0].solve.trace_digest.clone();
        assert_eq!(sealed.len(), 16);
        // Re-finalizing leaves a sealed digest untouched.
        let mut again = m.clone();
        again.finalize();
        assert_eq!(again.cases[0].methods[0].solve.trace_digest, sealed);
    }

    #[test]
    fn rejects_inconsistent_backend_usage() {
        let mut m = manifest_with_cases();
        m.cases[0].methods[0].solve.backend_usage[0].reads = 7;
        assert!(m.validate().unwrap_err().contains("backend usage"));

        let mut m = manifest_with_cases();
        m.cases[0].methods[0].solve.backend_usage[0].speculative = 2;
        assert!(m.validate().unwrap_err().contains("speculative"));

        let mut m = manifest_with_cases();
        m.cases[0].methods[0].solve.backend_usage[0].cost = f64::NAN;
        assert!(m.validate().unwrap_err().contains("cost"));
    }

    fn server_request(
        request: u64,
        outcome: &str,
        cache: &str,
        latency_ms: f64,
    ) -> ServerRequestRecord {
        ServerRequestRecord {
            request,
            tenant: "tenant-a".into(),
            workload: "mxm-64".into(),
            method: "qcqm1".into(),
            outcome: outcome.into(),
            cache: cache.into(),
            queue_depth: 1,
            latency_ms,
            trace_digest: if outcome == "completed" {
                "deadbeefdeadbeef".into()
            } else {
                String::new()
            },
        }
    }

    fn server_manifest() -> RunManifest {
        let mut m = RunManifest::new("loadgen", ConfigSnapshot::default());
        m.server = Some(ServerLoadRecord {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            completed: 2,
            rejected: 1,
            cache_hits: 1,
            cache_misses: 1,
            max_queue_depth: 3,
            p50_latency_ms: 5.0,
            p99_latency_ms: 9.0,
            throughput_rps: 100.0,
            wall_ms: 20.0,
            requests: vec![
                server_request(0, "completed", "miss", 9.0),
                server_request(1, "completed", "hit", 5.0),
                server_request(2, "rejected", "", 0.5),
            ],
        });
        m.finalize();
        m
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_ms(&[], 99.0), 0.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_ms(&v, 50.0), 50.0);
        assert_eq!(percentile_ms(&v, 99.0), 99.0);
        assert_eq!(percentile_ms(&v, 100.0), 100.0);
        assert_eq!(percentile_ms(&[7.0, 3.0], 50.0), 3.0);
        assert_eq!(percentile_ms(&[7.0, 3.0], 99.0), 7.0);
    }

    #[test]
    fn server_only_manifest_is_valid() {
        let m = server_manifest();
        m.validate().expect("server manifest validates");
        let back = RunManifest::from_json(&m.to_json_pretty()).unwrap();
        assert_eq!(back, m);
        let digest = m.summarize();
        assert!(digest.contains("2 completed / 1 rejected"), "{digest}");
        assert!(digest.contains("p99 9.0 ms"), "{digest}");
    }

    #[test]
    fn rejects_inconsistent_server_accounting() {
        let mut m = server_manifest();
        m.server.as_mut().unwrap().completed = 3;
        assert!(m.validate().unwrap_err().contains("completed"));

        let mut m = server_manifest();
        m.server.as_mut().unwrap().cache_hits = 2;
        assert!(m.validate().unwrap_err().contains("cache"));

        let mut m = server_manifest();
        m.server.as_mut().unwrap().requests[2].cache = "hit".into();
        assert!(m.validate().unwrap_err().contains("outcome/cache"));

        let mut m = server_manifest();
        m.server.as_mut().unwrap().p50_latency_ms = 99.0;
        assert!(m.validate().unwrap_err().contains("p50"));

        let mut m = server_manifest();
        m.server.as_mut().unwrap().requests[0].queue_depth = 64;
        assert!(m.validate().unwrap_err().contains("high-water"));

        let mut m = server_manifest();
        m.server.as_mut().unwrap().requests[2].trace_digest = "deadbeef".into();
        assert!(m.validate().unwrap_err().contains("digest"));

        // And the batch rule still holds: no server record, no cases.
        let mut m = server_manifest();
        m.server = None;
        assert!(m.validate().unwrap_err().contains("no cases"));
    }

    #[test]
    fn sim_only_case_is_valid() {
        let mut m = RunManifest::new("simulate", ConfigSnapshot::default());
        m.cases.push(CaseTrace {
            label: "baseline".into(),
            methods: vec![],
            sim: Some(SimCounters {
                iterations: 4,
                migration_messages: 7,
                recv_messages: 7,
                barrier_wait_total: 1.25,
                barrier_wait_max: 0.5,
                comm_busy_total: 2.0,
                total_makespan: 40.0,
            }),
        });
        m.finalize();
        m.validate().expect("sim-only manifest is valid");
        assert!(m.summarize().contains("migration msg"));
    }
}
