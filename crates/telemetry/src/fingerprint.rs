//! Deterministic trace fingerprints: the dynamic half of the determinism
//! auditor (DESIGN.md §Determinism audit).
//!
//! Every field of a [`ReadRecord`] except wall-clock time is a pure
//! function of (model, seed, configuration). This module folds those
//! fields into a per-read 64-bit fingerprint and the per-solve fingerprints
//! into a solve-level [`trace digest`](solve_trace_digest) recorded in the
//! run manifest (schema v6). Two runs of the same configuration must agree
//! on every fingerprint; when they do not, `qlrb trace diff` walks the
//! per-read records to localize the *first divergent read* instead of
//! reporting a byte-level "manifests differ".
//!
//! The hash is FNV-1a over a tagged, length-prefixed field encoding —
//! stable across platforms (explicit little-endian integer encoding,
//! `f64::to_bits` for floats) and independent of JSON formatting. It is a
//! change-detector, not a cryptographic commitment.
//!
//! Excluded from fingerprints, by design:
//!
//! * `wall_ms` (read, wave) and the solve [`TimingRecord`] — wall clocks
//!   are the one legitimately nondeterministic observation in a trace;
//! * `acceptance_rate` — derived from `accepted / proposals`, both of
//!   which are already hashed.

use crate::event::{FailedReadRecord, FaultRecord, ReadRecord, SolveRecord};

/// Version tag folded into every digest; bump when the encoding or the
/// field set changes so stale manifests fail `qlrb audit` loudly instead
/// of comparing incomparable hashes.
pub const FINGERPRINT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a accumulator with tagged field writers.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.bytes(&[u8::from(v)]);
    }

    /// Length-prefixed so `("ab", "c")` and `("a", "bc")` hash apart.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.bool(false),
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
        }
    }

    fn faults(&mut self, faults: &[FaultRecord]) {
        self.u64(faults.len() as u64);
        for f in faults {
            self.u64(u64::from(f.attempt));
            self.str(&f.backend);
            self.str(&f.error);
        }
    }
}

/// Fingerprint of one completed read: every deterministic field, in
/// declaration order, excluding `wall_ms` and the derived
/// `acceptance_rate`.
pub fn read_fingerprint(r: &ReadRecord) -> u64 {
    let mut h = Fnv::new();
    h.u64(u64::from(FINGERPRINT_VERSION));
    h.u64(r.read as u64);
    h.str(&r.sampler);
    h.u64(r.seed);
    h.bool(r.seeded);
    h.f64(r.initial_energy);
    h.f64(r.best_energy);
    h.f64(r.final_energy);
    h.u64(r.sweeps);
    h.u64(r.proposals);
    h.u64(r.accepted);
    h.u64(r.repair_steps);
    h.u64(r.polish_flips);
    h.f64(r.polish_improvement);
    h.f64(r.objective);
    h.f64(r.violation);
    h.bool(r.feasible);
    h.u64(u64::from(r.attempts));
    h.u64(r.backoff_proposals);
    h.faults(&r.faults);
    h.str(&r.backend);
    h.bool(r.speculated);
    h.opt_str(r.cancelled_backend.as_deref());
    h.0
}

/// Fingerprint of one exhausted read (its whole fault chain).
pub fn failed_read_fingerprint(f: &FailedReadRecord) -> u64 {
    let mut h = Fnv::new();
    h.u64(u64::from(FINGERPRINT_VERSION));
    h.u64(f.read as u64);
    h.str(&f.sampler);
    h.str(&f.backend);
    h.faults(&f.faults);
    h.0
}

/// The solve-level trace digest: a fold over every per-read fingerprint
/// plus the deterministic solve structure (waves sans wall time, backend
/// accounting, termination). Rendered as 16 lowercase hex digits — the
/// value [`SolveRecord::trace_digest`] records under manifest schema v6.
///
/// The record's own `trace_digest` field is *not* an input, so the digest
/// of a sealed record recomputes to itself.
pub fn solve_trace_digest(s: &SolveRecord) -> String {
    let mut h = Fnv::new();
    h.u64(u64::from(FINGERPRINT_VERSION));
    h.u64(s.num_vars as u64);
    h.u64(s.compiled_vars as u64);
    h.u64(s.requested_reads as u64);
    h.u64(s.reads.len() as u64);
    for r in &s.reads {
        h.u64(read_fingerprint(r));
    }
    h.u64(s.failed_reads.len() as u64);
    for f in &s.failed_reads {
        h.u64(failed_read_fingerprint(f));
    }
    h.u64(s.backend_usage.len() as u64);
    for u in &s.backend_usage {
        h.str(&u.backend);
        h.u64(u.reads as u64);
        h.u64(u.failed_attempts as u64);
        h.u64(u.speculative as u64);
        h.u64(u.cancelled as u64);
        h.f64(u.cost);
        h.f64(u.qpu_ms);
    }
    h.u64(s.waves.len() as u64);
    for w in &s.waves {
        h.u64(w.wave as u64);
        h.u64(w.first_read as u64);
        h.u64(w.reads as u64);
        h.u64(w.allocation.len() as u64);
        for a in &w.allocation {
            h.str(&a.sampler);
            h.u64(a.reads as u64);
        }
        h.u64(w.elite_seeded as u64);
    }
    h.str(&s.termination);
    // Decomposition fold (schema v7): `None` contributes nothing, so every
    // digest sealed before v7 — and every monolithic solve — recomputes
    // unchanged. Wall times are excluded, as everywhere else.
    if let Some(d) = &s.decomposition {
        h.str(&d.strategy);
        h.u64(d.window_cap as u64);
        h.u64(d.sub_solves as u64);
        h.u64(d.levels.len() as u64);
        for l in &d.levels {
            h.u64(l.level as u64);
            h.u64(l.size as u64);
            h.u64(l.solved_vars as u64);
            h.f64(l.objective_before);
            h.f64(l.objective_after);
        }
        h.u64(d.windows.len() as u64);
        for w in &d.windows {
            h.u64(w.level as u64);
            h.u64(w.window as u64);
            h.u64(w.vars as u64);
            h.f64(w.objective_before);
            h.f64(w.objective_after);
            h.bool(w.accepted);
        }
    }
    format!("{:016x}", h.0)
}

/// Stamps [`SolveRecord::trace_digest`] with the recomputed digest.
/// Idempotent; the anneal scheduler calls this once per solve before the
/// record reaches the trace sink, and `RunManifest::finalize` calls it for
/// records assembled by hand (tests, external producers).
pub fn seal(record: &mut SolveRecord) {
    record.trace_digest = solve_trace_digest(record);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleSetSummary, TimingRecord};

    fn read(seed: u64) -> ReadRecord {
        ReadRecord {
            read: 0,
            sampler: "SA".into(),
            seed,
            seeded: false,
            initial_energy: 10.0,
            best_energy: 1.0,
            final_energy: 0.5,
            sweeps: 100,
            proposals: 600,
            accepted: 150,
            acceptance_rate: 0.25,
            repair_steps: 3,
            polish_flips: 2,
            polish_improvement: 0.5,
            objective: 0.5,
            violation: 0.0,
            feasible: true,
            wall_ms: 1.25,
            attempts: 1,
            backoff_proposals: 0,
            faults: vec![],
            backend: "in-process".into(),
            speculated: false,
            cancelled_backend: None,
        }
    }

    fn solve(seed: u64) -> SolveRecord {
        SolveRecord {
            num_vars: 6,
            compiled_vars: 8,
            requested_reads: 1,
            reads: vec![read(seed)],
            failed_reads: vec![],
            backend_usage: vec![],
            waves: vec![],
            termination: "exhausted".into(),
            timing: TimingRecord::default(),
            summary: SampleSetSummary::default(),
            trace_digest: String::new(),
            decomposition: None,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_seed_sensitive() {
        assert_eq!(read_fingerprint(&read(42)), read_fingerprint(&read(42)));
        assert_ne!(read_fingerprint(&read(42)), read_fingerprint(&read(43)));
    }

    #[test]
    fn wall_clock_and_acceptance_rate_do_not_perturb_the_fingerprint() {
        let a = read(42);
        let mut b = read(42);
        b.wall_ms = 999.0;
        b.acceptance_rate = 0.99;
        assert_eq!(read_fingerprint(&a), read_fingerprint(&b));
    }

    #[test]
    fn every_deterministic_field_perturbs_the_fingerprint() {
        let base = read_fingerprint(&read(42));
        let muts: Vec<(&str, Box<dyn Fn(&mut ReadRecord)>)> = vec![
            ("sampler", Box::new(|r| r.sampler = "SQA".into())),
            ("seeded", Box::new(|r| r.seeded = true)),
            ("initial_energy", Box::new(|r| r.initial_energy = 11.0)),
            ("best_energy", Box::new(|r| r.best_energy = 2.0)),
            ("final_energy", Box::new(|r| r.final_energy = 0.25)),
            ("sweeps", Box::new(|r| r.sweeps += 1)),
            ("proposals", Box::new(|r| r.proposals += 1)),
            ("accepted", Box::new(|r| r.accepted += 1)),
            ("repair_steps", Box::new(|r| r.repair_steps += 1)),
            ("polish_flips", Box::new(|r| r.polish_flips += 1)),
            ("objective", Box::new(|r| r.objective = 9.0)),
            ("violation", Box::new(|r| r.violation = 1.0)),
            ("feasible", Box::new(|r| r.feasible = false)),
            ("attempts", Box::new(|r| r.attempts += 1)),
            ("backoff", Box::new(|r| r.backoff_proposals += 64)),
            ("backend", Box::new(|r| r.backend = "qpu".into())),
            ("speculated", Box::new(|r| r.speculated = true)),
            (
                "cancelled",
                Box::new(|r| r.cancelled_backend = Some("qpu".into())),
            ),
            (
                "faults",
                Box::new(|r| {
                    r.faults.push(FaultRecord {
                        attempt: 0,
                        backend: "qpu".into(),
                        error: "timeout".into(),
                    });
                }),
            ),
        ];
        for (field, m) in muts {
            let mut r = read(42);
            m(&mut r);
            assert_ne!(read_fingerprint(&r), base, "{field} not fingerprinted");
        }
    }

    #[test]
    fn digest_is_hex_and_ignores_its_own_field() {
        let mut s = solve(42);
        let digest = solve_trace_digest(&s);
        assert_eq!(digest.len(), 16);
        assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
        seal(&mut s);
        assert_eq!(s.trace_digest, digest);
        // Sealing again (or hashing a sealed record) is a fixed point.
        assert_eq!(solve_trace_digest(&s), digest);
    }

    #[test]
    fn digest_localizes_termination_and_structure() {
        let base = solve_trace_digest(&solve(42));
        let mut s = solve(42);
        s.termination = "plateau".into();
        assert_ne!(solve_trace_digest(&s), base);
        let mut s = solve(42);
        s.failed_reads.push(FailedReadRecord {
            read: 1,
            sampler: "SA".into(),
            backend: "qpu".into(),
            faults: vec![FaultRecord {
                attempt: 0,
                backend: "qpu".into(),
                error: "crash".into(),
            }],
        });
        assert_ne!(solve_trace_digest(&s), base);
    }

    #[test]
    fn decomposition_folds_into_the_digest_only_when_present() {
        use crate::event::{DecompositionRecord, DecompositionWindowRecord};
        // `None` must hash exactly like a pre-v7 record (field absent).
        let base = solve_trace_digest(&solve(42));
        let mut s = solve(42);
        s.decomposition = Some(DecompositionRecord {
            strategy: "multilevel".into(),
            window_cap: 1024,
            levels: vec![],
            windows: vec![],
            sub_solves: 1,
        });
        let with = solve_trace_digest(&s);
        assert_ne!(with, base, "decomposition not fingerprinted");
        // Window outcomes are digest inputs; wall times are not.
        let d = s.decomposition.as_mut().expect("just set");
        d.windows.push(DecompositionWindowRecord {
            level: 0,
            window: 0,
            vars: 8,
            objective_before: 2.0,
            objective_after: 1.0,
            accepted: true,
            wall_ms: 3.5,
        });
        let with_window = solve_trace_digest(&s);
        assert_ne!(with_window, with);
        let d = s.decomposition.as_mut().expect("just set");
        d.windows[0].wall_ms = 99.0;
        assert_eq!(solve_trace_digest(&s), with_window);
    }
}
