#![forbid(unsafe_code)]
//! # qlrb-analyze — static analysis for LRP quadratic models
//!
//! Production hybrid solvers reject bad models *before* sampling: an
//! underestimated penalty weight or a degenerate one-hot group yields
//! "feasible-looking" QUBOs that the solver burns its whole time budget
//! repairing. This crate is the diagnostic pass that catches those shapes
//! ahead of the solve:
//!
//! * [`diagnostic`] — the vocabulary: [`RuleId`] (stable kebab-case rule
//!   identifiers), [`Severity`], [`Span`] (variable / constraint / term /
//!   coupling), [`Diagnostic`], and the [`LintReport`] container with
//!   human-readable and JSON renderings. [`FlatDiagnostic`] and
//!   [`render_findings_json`] are the shared `--json` schema both the
//!   model linter and the `cargo xtask lint` source linter emit.
//! * [`model`] — the passes: [`lint_cqm`] (structure), [`lint_penalty`]
//!   (weights vs. the provable bound for the chosen `PenaltyStyle`),
//!   [`lint_cqm_with_penalty`] (both), and [`lint_bqm`] (QUBO adjacency
//!   invariants).
//! * [`audit`] — the dynamic half of the determinism auditor:
//!   [`diff_manifests`](audit::diff_manifests) localizes the first
//!   divergent read between two replay manifests, and
//!   [`audit_manifest`](audit::audit_manifest) verifies every stored
//!   trace digest recomputes from its own record.
//!
//! The LRP-specific entry points (qubit-budget accounting against
//! `paper_qubit_formula`) live in `qlrb-core`, which owns the `LrpCqm`
//! type; the solver-side wiring (`LintMode`, deny-by-default in the
//! harness) lives in `qlrb-anneal`. The `qlrb lint` CLI subcommand and the
//! `cargo xtask lint` source-invariant pass complete the static-analysis
//! surface.
//!
//! ```
//! use qlrb_analyze::{lint_cqm, RuleId};
//! use qlrb_model::{Cqm, LinearExpr, Sense, Var};
//!
//! let mut cqm = Cqm::new(2);
//! let mut obj = LinearExpr::new();
//! obj.add_term(Var(0), 1.0).add_term(Var(1), 1.0);
//! cqm.add_squared_term(obj.clone(), 1.0, 1.0);
//! cqm.add_constraint(obj, Sense::Le, 1.0, "cap");
//! assert!(lint_cqm(&cqm).is_clean());
//!
//! // An unsatisfiable bound is an error with a stable rule id.
//! let mut bad = LinearExpr::new();
//! bad.add_term(Var(0), 1.0);
//! cqm.add_constraint(bad, Sense::Le, -1.0, "impossible");
//! let report = lint_cqm(&cqm);
//! assert!(report.has_rule(RuleId::InfeasibleBound));
//! ```

pub mod audit;
pub mod diagnostic;
pub mod model;

pub use audit::{audit_manifest, diff_manifests, AuditSummary, Divergence, TraceDiff};
pub use diagnostic::{
    json_escape, render_findings_json, Diagnostic, FlatDiagnostic, LintReport, RuleId, Severity,
    Span,
};
pub use model::{lint_bqm, lint_cqm, lint_cqm_with_penalty, lint_penalty, F64_EXACT_INT_LIMIT};
