//! The diagnostic vocabulary: rules, severities, spans, and reports.

/// Stable identifiers for the model-lint rules.
///
/// The kebab-case form returned by [`RuleId::as_str`] is the contract with
/// JSON consumers and allowlist comments; the enum variants are the contract
/// with Rust callers. Adding a rule means extending both [`RuleId::ALL`] and
/// the rule catalogue in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// A variable that appears in neither the objective nor any constraint:
    /// a wasted qubit the sampler flips to no effect.
    UnreferencedVariable,
    /// A variable with objective pressure but no constraint coupling.
    UnconstrainedVariable,
    /// A one-hot equality group with at most one member (forced or empty).
    DegenerateOneHot,
    /// A variable shared between two one-hot equality groups.
    OverlappingOneHot,
    /// A penalty weight below the provable coefficient bound for the chosen
    /// penalty style: samplers can profitably trade feasibility for
    /// objective.
    PenaltyBelowBound,
    /// A coefficient whose CSR penalty expansion is non-finite or leaves the
    /// exactly-representable f64 integer range.
    CoefficientOverflow,
    /// A constraint no binary assignment can satisfy (or a model presolve
    /// proves infeasible).
    InfeasibleBound,
    /// A QUBO adjacency row listing the same neighbour twice.
    DuplicateQuadratic,
    /// A QUBO adjacency that is not symmetric.
    AsymmetricQuadratic,
    /// A built LRP model whose variable count disagrees with the
    /// logical-qubit accounting.
    QubitBudgetMismatch,
}

impl RuleId {
    /// Every rule, in catalogue order.
    pub const ALL: [RuleId; 10] = [
        RuleId::UnreferencedVariable,
        RuleId::UnconstrainedVariable,
        RuleId::DegenerateOneHot,
        RuleId::OverlappingOneHot,
        RuleId::PenaltyBelowBound,
        RuleId::CoefficientOverflow,
        RuleId::InfeasibleBound,
        RuleId::DuplicateQuadratic,
        RuleId::AsymmetricQuadratic,
        RuleId::QubitBudgetMismatch,
    ];

    /// The stable kebab-case identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::UnreferencedVariable => "unreferenced-variable",
            RuleId::UnconstrainedVariable => "unconstrained-variable",
            RuleId::DegenerateOneHot => "degenerate-one-hot",
            RuleId::OverlappingOneHot => "overlapping-one-hot",
            RuleId::PenaltyBelowBound => "penalty-below-bound",
            RuleId::CoefficientOverflow => "coefficient-overflow",
            RuleId::InfeasibleBound => "infeasible-bound",
            RuleId::DuplicateQuadratic => "duplicate-quadratic",
            RuleId::AsymmetricQuadratic => "asymmetric-quadratic",
            RuleId::QubitBudgetMismatch => "qubit-budget-mismatch",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
///
/// Errors mark models a solver should refuse under `LintMode::Deny`:
/// solving them wastes the read budget or silently corrupts energies.
/// Warnings mark wasteful-but-solvable structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Wasteful or suspicious, but the solve is still meaningful.
    Warning,
    /// The solve would be meaningless or numerically unsound.
    Error,
}

impl Severity {
    /// Lower-case label used in JSON and rendered output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the model a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The model as a whole.
    Model,
    /// A binary variable, by dense index.
    Var(u32),
    /// A constraint, by index and label.
    Constraint {
        /// Position in `Cqm::constraints`.
        index: usize,
        /// The constraint's label.
        label: String,
    },
    /// A squared objective term, by index.
    Term(usize),
    /// A quadratic coupling between two variables.
    Pair(u32, u32),
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Span::Model => write!(f, "model"),
            Span::Var(v) => write!(f, "var {v}"),
            Span::Constraint { index, label } => write!(f, "constraint {index} ({label})"),
            Span::Term(t) => write!(f, "objective term {t}"),
            Span::Pair(u, v) => write!(f, "coupling ({u}, {v})"),
        }
    }
}

/// One finding: which rule fired, how bad it is, where, and what to do.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Error or warning.
    pub severity: Severity,
    /// Where the finding points.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a concrete fix is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// One-line rendering, `rustc`-style:
    /// `error[penalty-below-bound] constraint 3 (capacity[0]): ... help: ...`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}] {}: {}",
            self.severity, self.rule, self.span, self.message
        );
        if let Some(s) = &self.suggestion {
            out.push_str("\n    help: ");
            out.push_str(s);
        }
        out
    }
}

/// One finding in the flat, tool-agnostic schema every linting surface
/// emits under `--json`: the model linter (`qlrb lint`) renders its typed
/// [`Diagnostic`]s into this shape, and the source linter (`cargo xtask
/// lint`) builds it directly with `file:line` spans. One serializer, one
/// schema — consumers parse `{errors, warnings, diagnostics: [{rule,
/// severity, span, message, suggestion}]}` regardless of which tool wrote
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatDiagnostic {
    /// Stable kebab-case rule identifier.
    pub rule: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// Where the finding points: a model span or a `file:line` location.
    pub span: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a concrete fix is known (`null` in JSON
    /// otherwise).
    pub suggestion: Option<String>,
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The shared `--json` report: `{errors, warnings, diagnostics: [...]}`,
/// pretty-printed with two-space indents. Counts are derived from the
/// findings' severities, so the header can never disagree with the body.
///
/// Hand-rolled rather than serde so the report stays available to tools
/// that must not pull the full serialization stack (the `xtask` linter
/// lints the workspace that defines it).
pub fn render_findings_json(diagnostics: &[FlatDiagnostic]) -> String {
    let errors = diagnostics.iter().filter(|d| d.severity == "error").count();
    let warnings = diagnostics.len() - errors;
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"rule\": \"{}\",\n", json_escape(&d.rule)));
        out.push_str(&format!(
            "      \"severity\": \"{}\",\n",
            json_escape(&d.severity)
        ));
        out.push_str(&format!("      \"span\": \"{}\",\n", json_escape(&d.span)));
        out.push_str(&format!(
            "      \"message\": \"{}\",\n",
            json_escape(&d.message)
        ));
        match &d.suggestion {
            Some(s) => {
                out.push_str(&format!("      \"suggestion\": \"{}\"\n", json_escape(s)));
            }
            None => out.push_str("      \"suggestion\": null\n"),
        }
        out.push_str("    }");
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// An ordered collection of findings from one lint pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// The findings, in rule-catalogue then model order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics.len() - self.num_errors()
    }

    /// Whether the pass found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.num_errors() > 0
    }

    /// Whether any finding fired under `rule`.
    pub fn has_rule(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// The machine-readable report: `{errors, warnings, diagnostics: [...]}`
    /// in the [`FlatDiagnostic`] schema shared with `cargo xtask lint`.
    pub fn to_json(&self) -> String {
        let flat: Vec<FlatDiagnostic> = self
            .diagnostics
            .iter()
            .map(|d| FlatDiagnostic {
                rule: d.rule.as_str().to_string(),
                severity: d.severity.as_str().to_string(),
                span: d.span.to_string(),
                message: d.message.clone(),
                suggestion: d.suggestion.clone(),
            })
            .collect();
        render_findings_json(&flat)
    }

    /// Human-readable rendering, one finding per paragraph, with a summary
    /// line; `"clean"` for an empty report.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)",
            self.num_errors(),
            self.num_warnings()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: RuleId::PenaltyBelowBound,
            severity: Severity::Error,
            span: Span::Constraint {
                index: 3,
                label: "capacity[0]".into(),
            },
            message: "weight 0.5 is below the bound 12.0".into(),
            suggestion: Some("raise the weight to at least 12.0".into()),
        }
    }

    #[test]
    fn rule_ids_are_unique_kebab_case() {
        let mut seen = std::collections::HashSet::new();
        for r in RuleId::ALL {
            let s = r.as_str();
            assert!(seen.insert(s), "duplicate id {s}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{s} is not kebab-case"
            );
        }
        assert_eq!(RuleId::ALL.len(), 10);
    }

    #[test]
    fn report_counts_and_flags() {
        let mut r = LintReport::new();
        assert!(r.is_clean());
        r.push(sample());
        r.push(Diagnostic {
            severity: Severity::Warning,
            rule: RuleId::UnreferencedVariable,
            span: Span::Var(7),
            message: "unused".into(),
            suggestion: None,
        });
        assert_eq!(r.num_errors(), 1);
        assert_eq!(r.num_warnings(), 1);
        assert!(r.has_errors());
        assert!(r.has_rule(RuleId::PenaltyBelowBound));
        assert!(!r.has_rule(RuleId::DuplicateQuadratic));
        assert!(!r.is_clean());
    }

    #[test]
    fn render_mentions_rule_span_and_help() {
        let text = sample().render();
        assert!(text.contains("error[penalty-below-bound]"));
        assert!(text.contains("constraint 3 (capacity[0])"));
        assert!(text.contains("help: raise the weight"));
    }

    #[test]
    fn json_is_machine_readable() {
        let mut r = LintReport::new();
        r.push(sample());
        let json = r.to_json();
        assert!(json.contains("\"penalty-below-bound\""));
        assert!(json.contains("\"error\""));
        assert!(json.contains("\"errors\""));
        // Clean reports serialize to an empty diagnostics list.
        let clean = LintReport::new().to_json();
        assert!(clean.contains("\"diagnostics\""));
    }

    #[test]
    fn shared_serializer_escapes_and_counts() {
        let findings = vec![
            FlatDiagnostic {
                rule: "no-unwrap".into(),
                severity: "error".into(),
                span: "crates/x/src/lib.rs:12".into(),
                message: "say \"no\"\nplease".into(),
                suggestion: None,
            },
            FlatDiagnostic {
                rule: "unordered-iteration".into(),
                severity: "warning".into(),
                span: "crates/y/src/lib.rs:3".into(),
                message: "tab\there".into(),
                suggestion: Some("use a BTreeMap".into()),
            },
        ];
        let json = render_findings_json(&findings);
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(json.contains("\"warnings\": 1"), "{json}");
        assert!(json.contains(r#"say \"no\"\nplease"#), "{json}");
        assert!(json.contains(r"tab\there"), "{json}");
        assert!(json.contains("\"suggestion\": null"), "{json}");
        assert!(json.contains("\"suggestion\": \"use a BTreeMap\""), "{json}");
        // An empty report is still a complete document.
        let empty = render_findings_json(&[]);
        assert!(empty.contains("\"errors\": 0"), "{empty}");
        assert!(empty.contains("\"diagnostics\": []"), "{empty}");
    }

    #[test]
    fn json_escape_covers_controls_and_quotes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("a\nb\rc\td"), "a\\nb\\rc\\td");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = LintReport::new();
        a.push(sample());
        let mut b = LintReport::new();
        b.push(sample());
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
    }
}
