//! The model-lint rules over [`Cqm`] and [`BinaryQuadraticModel`].
//!
//! Every rule is a pure structural pass; nothing here mutates the model or
//! draws randomness, so linting a model is free to repeat and cannot perturb
//! a solve. The passes deliberately reuse the model layer's own arithmetic
//! ([`LinearExpr::min_value`], [`Cqm::objective_unit_scale`], `presolve`) so
//! the linter's verdicts stay consistent with what the evaluator and the
//! penalty auto-scaler actually compute.

use qlrb_model::bqm::BinaryQuadraticModel;
use qlrb_model::cqm::{Cqm, Sense};
use qlrb_model::expr::{LinearExpr, Var};
use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};
use qlrb_model::presolve::presolve;

use crate::diagnostic::{Diagnostic, LintReport, RuleId, Severity, Span};

/// Largest integer magnitude f64 represents exactly (2⁵³). Penalty
/// expansions past this lose unit resolution: a one-task migration can
/// become invisible to the incremental flip deltas.
pub const F64_EXACT_INT_LIMIT: f64 = 9_007_199_254_740_992.0;

/// Cap on per-variable diagnostics emitted for one rule before the rest are
/// folded into a single model-level summary finding.
const MAX_PER_RULE: usize = 8;

/// Lints the structure of a CQM: variable references, one-hot groups,
/// coefficient magnitudes (at unit penalty weight), and satisfiability of
/// constraint bounds (including a presolve infeasibility proof).
pub fn lint_cqm(cqm: &Cqm) -> LintReport {
    let mut report = LintReport::new();
    let structurally_sound = reference_rules(cqm, &mut report);
    one_hot_rules(cqm, &mut report);
    overflow_rules(cqm, 1.0, 1.0, &mut report);
    bound_rules(cqm, structurally_sound, &mut report);
    report
}

/// [`lint_cqm`] plus the penalty-weight rules for `penalty`: coefficient
/// magnitudes are re-checked at the actual constraint weights, and each
/// weight is compared against the provable bound for the chosen style.
pub fn lint_cqm_with_penalty(cqm: &Cqm, penalty: &PenaltyConfig) -> LintReport {
    let mut report = LintReport::new();
    let structurally_sound = reference_rules(cqm, &mut report);
    one_hot_rules(cqm, &mut report);
    overflow_rules(cqm, penalty.eq_weight, penalty.le_weight, &mut report);
    bound_rules(cqm, structurally_sound, &mut report);
    report.merge(lint_penalty(cqm, penalty));
    report
}

/// Whether every expression references only variables inside the model
/// width — the precondition for running `presolve` (and hence a solve)
/// without indexing out of bounds. [`lint_cqm`] reports violations as
/// [`RuleId::InfeasibleBound`] errors; callers that want to presolve a
/// model themselves should gate on this first.
pub fn references_in_bounds(cqm: &Cqm) -> bool {
    let n = cqm.num_vars();
    let ok = |expr: &LinearExpr| expr.terms().iter().all(|&(v, _)| v.index() < n);
    cqm.squared_terms.iter().all(|t| ok(&t.expr))
        && ok(&cqm.linear_objective)
        && cqm.constraints.iter().all(|c| ok(&c.expr))
}

/// Only the penalty-weight rule — used by the solver, which checks the
/// weights it actually derived against the *presolved* model while linting
/// the original model structurally (presolve substitutes fixed variables
/// out of every expression, which would trip the reference rules).
pub fn lint_penalty(cqm: &Cqm, penalty: &PenaltyConfig) -> LintReport {
    let mut report = LintReport::new();
    let scale = cqm.objective_unit_scale();
    let tol = scale * 1e-9;

    if cqm.num_eq_constraints() > 0 && penalty.eq_weight + tol < scale {
        report.push(Diagnostic {
            rule: RuleId::PenaltyBelowBound,
            severity: Severity::Error,
            span: Span::Model,
            message: format!(
                "equality penalty weight {} is below the provable bound {scale}: a sampler \
                 can gain more objective from one flip than the penalty charges for the \
                 violation it causes",
                penalty.eq_weight
            ),
            suggestion: Some(format!(
                "use PenaltyConfig::auto (weight ≥ {scale}) or raise eq_weight"
            )),
        });
    }
    if cqm.num_le_constraints() > 0 {
        // Effective unit-violation cost of the style at g = 1: plain weight
        // for quadratic/slack penalties, weight·(λ₁ + λ₂) for unbalanced
        // penalization (Montañez-Barrera et al. 2024).
        let (effective, style_note) = match penalty.style {
            PenaltyStyle::ViolationQuadratic | PenaltyStyle::Slack => (penalty.le_weight, ""),
            PenaltyStyle::Unbalanced { l1, l2 } => (
                penalty.le_weight * (l1 + l2),
                " (unbalanced style: weight · (λ₁ + λ₂) at unit violation)",
            ),
        };
        if effective + tol < scale {
            report.push(Diagnostic {
                rule: RuleId::PenaltyBelowBound,
                severity: Severity::Error,
                span: Span::Model,
                message: format!(
                    "inequality penalty {effective} is below the provable bound \
                     {scale}{style_note}"
                ),
                suggestion: Some(format!(
                    "use PenaltyConfig::auto (weight ≥ {scale}) or raise le_weight / the \
                     unbalanced coefficients"
                )),
            });
        }
    }
    report
}

/// Lints a QUBO: finite biases, no duplicated adjacency entries, and a
/// symmetric adjacency. A broken adjacency cannot be built through
/// [`BinaryQuadraticModel::add_quadratic`] (it merges and mirrors), but can
/// arrive through deserialization or future construction paths — and an
/// asymmetric one silently skews `flip_delta` against `energy`.
pub fn lint_bqm(bqm: &BinaryQuadraticModel) -> LintReport {
    let mut report = LintReport::new();
    let n = bqm.num_vars();
    if !bqm.offset().is_finite() {
        report.push(non_finite(Span::Model, "offset", bqm.offset()));
    }
    for i in 0..n {
        let v = Var(i as u32);
        if !bqm.linear(v).is_finite() {
            report.push(non_finite(
                Span::Var(i as u32),
                "linear bias",
                bqm.linear(v),
            ));
        }
        let row = bqm.neighbours(v);
        for (pos, &(j, c)) in row.iter().enumerate() {
            if !c.is_finite() {
                report.push(non_finite(Span::Pair(i as u32, j), "coupling", c));
            }
            if row[..pos].iter().any(|&(j2, _)| j2 == j) {
                report.push(Diagnostic {
                    rule: RuleId::DuplicateQuadratic,
                    severity: Severity::Warning,
                    span: Span::Pair(i as u32, j),
                    message: format!("variable {i} lists neighbour {j} more than once"),
                    suggestion: Some("merge the duplicate couplings into one entry".into()),
                });
            }
            // Symmetry: the mirror entry must exist with the same weight.
            // Check each undirected pair once (from its lower endpoint).
            if (i as u32) < j || j as usize >= n {
                let back: f64 = if (j as usize) < n {
                    bqm.neighbours(Var(j))
                        .iter()
                        .filter(|&&(k, _)| k == i as u32)
                        .map(|&(_, c2)| c2)
                        .sum()
                } else {
                    f64::NAN
                };
                let mirrored = (j as usize) < n && (back - c).abs() <= 1e-12 * (1.0 + c.abs());
                if !mirrored {
                    report.push(Diagnostic {
                        rule: RuleId::AsymmetricQuadratic,
                        severity: Severity::Error,
                        span: Span::Pair(i as u32, j),
                        message: format!(
                            "coupling ({i}, {j}) = {c} has no matching mirror entry: \
                             flip deltas and full energies will disagree"
                        ),
                        suggestion: Some(
                            "store every coupling in both adjacency rows with equal weight".into(),
                        ),
                    });
                }
            }
        }
    }
    report
}

fn non_finite(span: Span, what: &str, value: f64) -> Diagnostic {
    Diagnostic {
        rule: RuleId::CoefficientOverflow,
        severity: Severity::Error,
        span,
        message: format!("{what} is {value}: energies would be poisoned"),
        suggestion: Some("replace the non-finite coefficient before solving".into()),
    }
}

/// Reference rules: every variable should feel objective pressure *and*
/// constraint coupling. Returns `false` when an expression references a
/// variable beyond the model width (the later presolve pass would index out
/// of bounds on such a model, so [`bound_rules`] skips it).
fn reference_rules(cqm: &Cqm, report: &mut LintReport) -> bool {
    let n = cqm.num_vars();
    let mut in_obj = vec![false; n];
    let mut in_con = vec![false; n];
    let mut sound = true;

    let mut mark = |expr: &LinearExpr, flags: &mut [bool], span: Span, rep: &mut LintReport| {
        for &(v, _) in expr.terms() {
            match flags.get_mut(v.index()) {
                Some(f) => *f = true,
                None => {
                    sound = false;
                    rep.push(Diagnostic {
                        rule: RuleId::InfeasibleBound,
                        severity: Severity::Error,
                        span: span.clone(),
                        message: format!(
                            "references variable {} but the model has only {n} variables",
                            v.0
                        ),
                        suggestion: Some("allocate the variable with add_vars first".into()),
                    });
                }
            }
        }
    };

    for (t, term) in cqm.squared_terms.iter().enumerate() {
        mark(&term.expr, &mut in_obj, Span::Term(t), report);
    }
    mark(&cqm.linear_objective, &mut in_obj, Span::Model, report);
    for (idx, c) in cqm.constraints.iter().enumerate() {
        let span = Span::Constraint {
            index: idx,
            label: c.label.clone(),
        };
        mark(&c.expr, &mut in_con, span, report);
    }

    emit_per_var(
        report,
        (0..n).filter(|&v| !in_obj[v] && !in_con[v]),
        RuleId::UnreferencedVariable,
        "appears in neither the objective nor any constraint: a wasted qubit the sampler \
         flips to no effect",
        "drop the variable or couple it into the model",
    );
    emit_per_var(
        report,
        (0..n).filter(|&v| in_obj[v] && !in_con[v]),
        RuleId::UnconstrainedVariable,
        "has objective pressure but no constraint coupling: its optimum is decided by \
         sign inspection, not sampling",
        "fix the variable to its objective-optimal value, or constrain it",
    );
    sound
}

/// Emits up to [`MAX_PER_RULE`] per-variable diagnostics, then one summary.
fn emit_per_var(
    report: &mut LintReport,
    vars: impl Iterator<Item = usize>,
    rule: RuleId,
    message: &str,
    suggestion: &str,
) {
    let vars: Vec<usize> = vars.collect();
    for &v in vars.iter().take(MAX_PER_RULE) {
        report.push(Diagnostic {
            rule,
            severity: Severity::Warning,
            span: Span::Var(v as u32),
            message: format!("variable {v} {message}"),
            suggestion: Some(suggestion.into()),
        });
    }
    if vars.len() > MAX_PER_RULE {
        report.push(Diagnostic {
            rule,
            severity: Severity::Warning,
            span: Span::Model,
            message: format!("… and {} more variables", vars.len() - MAX_PER_RULE),
            suggestion: None,
        });
    }
}

/// Whether a constraint is a one-hot group: `Σ x_i = 1` with unit
/// coefficients and no constant part.
fn one_hot_members(c: &qlrb_model::cqm::Constraint) -> Option<&[(Var, f64)]> {
    let unit = c.sense == Sense::Eq
        && (c.rhs - 1.0).abs() < 1e-9
        && c.expr.constant_part().abs() < 1e-9
        && c.expr
            .terms()
            .iter()
            .all(|&(_, co)| (co - 1.0).abs() < 1e-9);
    unit.then(|| c.expr.terms())
}

/// One-hot group rules: degenerate (≤ 1 member) and overlapping groups.
fn one_hot_rules(cqm: &Cqm, report: &mut LintReport) {
    // var index → first one-hot constraint index that contains it.
    let mut first_group: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (idx, c) in cqm.constraints.iter().enumerate() {
        let Some(members) = one_hot_members(c) else {
            continue;
        };
        if members.len() == 1 {
            report.push(Diagnostic {
                rule: RuleId::DegenerateOneHot,
                severity: Severity::Warning,
                span: Span::Constraint {
                    index: idx,
                    label: c.label.clone(),
                },
                message: format!(
                    "one-hot group has a single member (variable {}): the constraint \
                     forces it to 1 and burns a penalty term doing so",
                    members[0].0 .0
                ),
                suggestion: Some(
                    "fix the variable and drop the constraint (presolve would)".into(),
                ),
            });
        }
        for &(v, _) in members {
            match first_group.get(&v.0) {
                None => {
                    first_group.insert(v.0, idx);
                }
                Some(&prev) => {
                    report.push(Diagnostic {
                        rule: RuleId::OverlappingOneHot,
                        severity: Severity::Warning,
                        span: Span::Var(v.0),
                        message: format!(
                            "variable {} belongs to one-hot groups '{}' and '{}': the \
                             groups are coupled and cannot be independently satisfied by \
                             local moves",
                            v.0, cqm.constraints[prev].label, c.label
                        ),
                        suggestion: Some(
                            "restructure the encoding so each variable selects for one group"
                                .into(),
                        ),
                    });
                }
            }
        }
    }
}

/// Coefficient-magnitude rules at the given penalty weights: non-finite
/// inputs are errors; expansions past [`F64_EXACT_INT_LIMIT`] warn that
/// unit-level objective differences fall below f64 resolution.
fn overflow_rules(cqm: &Cqm, eq_weight: f64, le_weight: f64, report: &mut LintReport) {
    let check = |expr: &LinearExpr, weight: f64, shift: f64, span: Span, rep: &mut LintReport| {
        let finite = expr.terms().iter().all(|&(_, c)| c.is_finite())
            && expr.constant_part().is_finite()
            && shift.is_finite()
            && weight.is_finite();
        if !finite {
            rep.push(Diagnostic {
                rule: RuleId::CoefficientOverflow,
                severity: Severity::Error,
                span,
                message: "a coefficient, constant, target, or weight is not finite".into(),
                suggestion: Some("replace the non-finite value before compiling".into()),
            });
            return;
        }
        // Largest intermediate the CSR evaluator can form for this
        // expression: weight · (|range bound| + max |coeff|)², covering both
        // the squared energy term and its single-flip delta.
        let lo = expr.min_value() - shift;
        let hi = expr.max_value() - shift;
        let bound = lo.abs().max(hi.abs()) + expr.max_abs_coeff();
        let worst = weight * bound * bound;
        if !worst.is_finite() || worst > F64_EXACT_INT_LIMIT {
            rep.push(Diagnostic {
                rule: RuleId::CoefficientOverflow,
                severity: if worst.is_finite() {
                    Severity::Warning
                } else {
                    Severity::Error
                },
                span,
                message: format!(
                    "penalty expansion can reach {worst:e}, beyond the exactly-representable \
                     f64 integer range ({F64_EXACT_INT_LIMIT:e}): unit-sized objective \
                     differences become invisible to flip deltas"
                ),
                suggestion: Some("rescale weights or coefficients toward unit magnitude".into()),
            });
        }
    };

    for (t, term) in cqm.squared_terms.iter().enumerate() {
        check(&term.expr, term.weight, term.target, Span::Term(t), report);
    }
    check(&cqm.linear_objective, 1.0, 0.0, Span::Model, report);
    for (idx, c) in cqm.constraints.iter().enumerate() {
        let weight = match c.sense {
            Sense::Eq => eq_weight,
            Sense::Le => le_weight,
        };
        let span = Span::Constraint {
            index: idx,
            label: c.label.clone(),
        };
        check(&c.expr, weight, c.rhs, span, report);
    }
}

/// Bound rules: constraints no binary assignment can satisfy, plus a
/// whole-model infeasibility proof from presolve.
fn bound_rules(cqm: &Cqm, structurally_sound: bool, report: &mut LintReport) {
    let mut constraint_flagged = false;
    for (idx, c) in cqm.constraints.iter().enumerate() {
        if !c.rhs.is_finite() {
            continue; // already reported by the overflow pass
        }
        let tol = 1e-9 * (1.0 + c.rhs.abs());
        let (lo, hi) = (c.expr.min_value(), c.expr.max_value());
        let problem = match c.sense {
            Sense::Le if lo > c.rhs + tol => Some(format!(
                "minimum value {lo} already exceeds the bound {}",
                c.rhs
            )),
            Sense::Eq if lo > c.rhs + tol => {
                Some(format!("minimum value {lo} exceeds the required {}", c.rhs))
            }
            Sense::Eq if hi < c.rhs - tol => Some(format!(
                "maximum value {hi} cannot reach the required {}",
                c.rhs
            )),
            _ => None,
        };
        if let Some(message) = problem {
            constraint_flagged = true;
            report.push(Diagnostic {
                rule: RuleId::InfeasibleBound,
                severity: Severity::Error,
                span: Span::Constraint {
                    index: idx,
                    label: c.label.clone(),
                },
                message: format!("no binary assignment satisfies this constraint: {message}"),
                suggestion: Some("fix the bound or drop the constraint".into()),
            });
        }
    }
    // A model can be infeasible without any single constraint being
    // unsatisfiable; presolve's fixing rounds prove many such cases.
    if structurally_sound && !constraint_flagged && presolve(cqm).infeasible {
        report.push(Diagnostic {
            rule: RuleId::InfeasibleBound,
            severity: Severity::Error,
            span: Span::Model,
            message: "presolve proves the constraint system infeasible: every sample will \
                      violate something and the solve degenerates to penalty repair"
                .into(),
            suggestion: Some("loosen the conflicting constraints".into()),
        });
    }
}
