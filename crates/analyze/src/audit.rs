//! Trace-divergence localization and digest auditing: the dynamic half of
//! the determinism auditor (DESIGN.md §Determinism audit).
//!
//! The static lints (`cargo xtask lint`) keep nondeterminism *sources* out
//! of the solver path; this module is the replay side that proves the
//! contract held. Two runs of the same configuration must produce
//! manifests whose solve records agree on every [trace
//! digest](qlrb_telemetry::solve_trace_digest). When they do not,
//! [`diff_manifests`] walks the per-read records and reports the *first
//! divergent read* — which wave, which slot in the wave, which sampler on
//! which backend, and which field — instead of a byte-level "files
//! differ". [`audit_manifest`] is the single-manifest check: every stored
//! digest must recompute from its own record, catching stale or
//! hand-edited traces.
//!
//! Wall-clock fields (`wall_ms`, [`TimingRecord`](qlrb_telemetry::TimingRecord))
//! and the derived `acceptance_rate` are outside the determinism contract
//! and are never compared. Floats are compared by bit pattern
//! (`f64::to_bits`), not by tolerance: determinism means *bit-identical*
//! replay, and the rendered values carry the bits so an off-by-one-ulp
//! reduction-order bug is visible in the report.

use qlrb_telemetry::{read_fingerprint, solve_trace_digest, ReadRecord, RunManifest, SolveRecord};

/// One localized divergence between two traces of the same configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Label of the case the divergence sits in.
    pub case: String,
    /// Method within the case (empty when the divergence is structural,
    /// e.g. differing case lists).
    pub method: String,
    /// Index of the first divergent read, when the divergence is inside a
    /// read record.
    pub read: Option<usize>,
    /// Wave the divergent read was launched in (from wave `first_read`
    /// ranges of manifest A).
    pub wave: Option<usize>,
    /// Slot of the read within its wave (`read - first_read`).
    pub slot: Option<usize>,
    /// Sampler that produced the divergent read, when known.
    pub sampler: Option<String>,
    /// Backend that served the divergent read, when known.
    pub backend: Option<String>,
    /// The first field (in declaration order) whose values disagree.
    pub field: String,
    /// Rendered value from manifest A (floats carry their bit pattern).
    pub a: String,
    /// Rendered value from manifest B.
    pub b: String,
}

impl Divergence {
    /// One-line human rendering:
    /// `case 'x' method 'hybrid' read 3 (wave 1 slot 0, SA on qpu): field 'seed' a=42 b=43`.
    pub fn render(&self) -> String {
        let mut out = String::from("first divergence: ");
        if !self.case.is_empty() {
            out.push_str(&format!("case '{}' ", self.case));
        }
        if !self.method.is_empty() {
            out.push_str(&format!("method '{}' ", self.method));
        }
        if let Some(r) = self.read {
            out.push_str(&format!("read {r} "));
            if let (Some(w), Some(s)) = (self.wave, self.slot) {
                out.push_str(&format!("(wave {w} slot {s}"));
                match (&self.sampler, &self.backend) {
                    (Some(sa), Some(b)) => out.push_str(&format!(", {sa} on {b}) ")),
                    (Some(sa), None) => out.push_str(&format!(", {sa}) ")),
                    _ => out.push_str(") "),
                }
            }
        }
        out.push_str(&format!(
            "field '{}': a={} b={}",
            self.field, self.a, self.b
        ));
        out
    }
}

/// Outcome of diffing two manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceDiff {
    /// Every deterministic field agrees.
    Identical {
        /// Cases compared.
        cases: usize,
        /// Solve records compared.
        solves: usize,
        /// Read records compared.
        reads: usize,
    },
    /// The first divergence, localized.
    Diverged(Box<Divergence>),
}

impl TraceDiff {
    /// Whether the traces agreed.
    pub fn is_identical(&self) -> bool {
        matches!(self, TraceDiff::Identical { .. })
    }

    /// One-line human rendering of the outcome.
    pub fn render(&self) -> String {
        match self {
            TraceDiff::Identical {
                cases,
                solves,
                reads,
            } => format!(
                "traces identical: {cases} case(s), {solves} solve(s), {reads} read(s) agree"
            ),
            TraceDiff::Diverged(d) => d.render(),
        }
    }
}

/// Summary of a clean single-manifest audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditSummary {
    /// Cases inspected.
    pub cases: usize,
    /// Solve records whose digest recomputed to the stored value.
    pub solves: usize,
    /// Read records covered by those digests.
    pub reads: usize,
}

/// Renders a float with its bit pattern so one-ulp divergences are
/// visible: `0.5 (0x3fe0000000000000)`.
fn show_f64(v: f64) -> String {
    format!("{v} (0x{:016x})", v.to_bits())
}

/// A field comparison that short-circuits into `out` on first mismatch.
struct FieldDiff {
    field: Option<(String, String, String)>,
}

impl FieldDiff {
    fn new() -> Self {
        Self { field: None }
    }

    fn done(&self) -> bool {
        self.field.is_some()
    }

    fn str(&mut self, name: &str, a: &str, b: &str) {
        if !self.done() && a != b {
            self.field = Some((name.to_string(), a.to_string(), b.to_string()));
        }
    }

    fn usize(&mut self, name: &str, a: usize, b: usize) {
        if !self.done() && a != b {
            self.field = Some((name.to_string(), a.to_string(), b.to_string()));
        }
    }

    fn u64(&mut self, name: &str, a: u64, b: u64) {
        if !self.done() && a != b {
            self.field = Some((name.to_string(), a.to_string(), b.to_string()));
        }
    }

    fn bool(&mut self, name: &str, a: bool, b: bool) {
        if !self.done() && a != b {
            self.field = Some((name.to_string(), a.to_string(), b.to_string()));
        }
    }

    /// Bit-exact float comparison; tolerance has no place in a replay check.
    fn f64(&mut self, name: &str, a: f64, b: f64) {
        if !self.done() && a.to_bits() != b.to_bits() {
            self.field = Some((name.to_string(), show_f64(a), show_f64(b)));
        }
    }
}

/// Compares two read records field by field, in declaration order,
/// skipping `wall_ms` and `acceptance_rate`. Returns the first differing
/// `(field, a, b)`, or `None` when the reads agree.
fn diff_read(a: &ReadRecord, b: &ReadRecord) -> Option<(String, String, String)> {
    let mut d = FieldDiff::new();
    d.usize("read", a.read, b.read);
    d.str("sampler", &a.sampler, &b.sampler);
    d.u64("seed", a.seed, b.seed);
    d.bool("seeded", a.seeded, b.seeded);
    d.f64("initial_energy", a.initial_energy, b.initial_energy);
    d.f64("best_energy", a.best_energy, b.best_energy);
    d.f64("final_energy", a.final_energy, b.final_energy);
    d.u64("sweeps", a.sweeps, b.sweeps);
    d.u64("proposals", a.proposals, b.proposals);
    d.u64("accepted", a.accepted, b.accepted);
    d.u64("repair_steps", a.repair_steps, b.repair_steps);
    d.u64("polish_flips", a.polish_flips, b.polish_flips);
    d.f64(
        "polish_improvement",
        a.polish_improvement,
        b.polish_improvement,
    );
    d.f64("objective", a.objective, b.objective);
    d.f64("violation", a.violation, b.violation);
    d.bool("feasible", a.feasible, b.feasible);
    d.u64("attempts", u64::from(a.attempts), u64::from(b.attempts));
    d.u64(
        "backoff_proposals",
        a.backoff_proposals,
        b.backoff_proposals,
    );
    d.usize("faults.len", a.faults.len(), b.faults.len());
    if !d.done() {
        for (i, (fa, fb)) in a.faults.iter().zip(&b.faults).enumerate() {
            d.u64(
                &format!("faults[{i}].attempt"),
                u64::from(fa.attempt),
                u64::from(fb.attempt),
            );
            d.str(&format!("faults[{i}].backend"), &fa.backend, &fb.backend);
            d.str(&format!("faults[{i}].error"), &fa.error, &fb.error);
        }
    }
    d.str("backend", &a.backend, &b.backend);
    d.bool("speculated", a.speculated, b.speculated);
    d.str(
        "cancelled_backend",
        a.cancelled_backend.as_deref().unwrap_or("<none>"),
        b.cancelled_backend.as_deref().unwrap_or("<none>"),
    );
    d.field
}

/// Locates the wave containing `read` via `first_read` ranges, returning
/// `(wave, slot)`.
fn wave_slot(solve: &SolveRecord, read: usize) -> (Option<usize>, Option<usize>) {
    for w in &solve.waves {
        if read >= w.first_read && read < w.first_read + w.reads {
            return (Some(w.wave), Some(read - w.first_read));
        }
    }
    (None, None)
}

/// Diffs one solve record pair; `None` means they agree on every
/// deterministic field.
fn diff_solve(case: &str, method: &str, a: &SolveRecord, b: &SolveRecord) -> Option<Divergence> {
    // Fast path: sealed digests agree, so every hashed field agrees.
    if !a.trace_digest.is_empty() && a.trace_digest == b.trace_digest {
        return None;
    }
    let at = |field: &str, av: String, bv: String| Divergence {
        case: case.to_string(),
        method: method.to_string(),
        read: None,
        wave: None,
        slot: None,
        sampler: None,
        backend: None,
        field: field.to_string(),
        a: av,
        b: bv,
    };
    let mut d = FieldDiff::new();
    d.usize("num_vars", a.num_vars, b.num_vars);
    d.usize("compiled_vars", a.compiled_vars, b.compiled_vars);
    d.usize("requested_reads", a.requested_reads, b.requested_reads);
    if let Some((f, av, bv)) = d.field {
        return Some(at(&f, av, bv));
    }

    // The payload: first read whose fingerprints disagree, drilled to the
    // first differing field.
    for (i, (ra, rb)) in a.reads.iter().zip(&b.reads).enumerate() {
        if read_fingerprint(ra) == read_fingerprint(rb) {
            continue;
        }
        let (field, av, bv) = diff_read(ra, rb)
            .unwrap_or_else(|| ("read_fingerprint".into(), "<a>".into(), "<b>".into()));
        let (wave, slot) = wave_slot(a, i);
        return Some(Divergence {
            case: case.to_string(),
            method: method.to_string(),
            read: Some(i),
            wave,
            slot,
            sampler: Some(ra.sampler.clone()),
            backend: Some(ra.backend.clone()),
            field,
            a: av,
            b: bv,
        });
    }
    if a.reads.len() != b.reads.len() {
        let mut div = at(
            "reads.len",
            a.reads.len().to_string(),
            b.reads.len().to_string(),
        );
        div.read = Some(a.reads.len().min(b.reads.len()));
        return Some(div);
    }

    let mut d = FieldDiff::new();
    d.usize(
        "failed_reads.len",
        a.failed_reads.len(),
        b.failed_reads.len(),
    );
    if !d.done() {
        for (i, (fa, fb)) in a.failed_reads.iter().zip(&b.failed_reads).enumerate() {
            d.usize(&format!("failed_reads[{i}].read"), fa.read, fb.read);
            d.str(
                &format!("failed_reads[{i}].sampler"),
                &fa.sampler,
                &fb.sampler,
            );
            d.str(
                &format!("failed_reads[{i}].backend"),
                &fa.backend,
                &fb.backend,
            );
            d.usize(
                &format!("failed_reads[{i}].faults.len"),
                fa.faults.len(),
                fb.faults.len(),
            );
        }
    }
    d.usize(
        "backend_usage.len",
        a.backend_usage.len(),
        b.backend_usage.len(),
    );
    if !d.done() {
        for (i, (ua, ub)) in a.backend_usage.iter().zip(&b.backend_usage).enumerate() {
            d.str(
                &format!("backend_usage[{i}].backend"),
                &ua.backend,
                &ub.backend,
            );
            d.usize(&format!("backend_usage[{i}].reads"), ua.reads, ub.reads);
            d.usize(
                &format!("backend_usage[{i}].failed_attempts"),
                ua.failed_attempts,
                ub.failed_attempts,
            );
            d.usize(
                &format!("backend_usage[{i}].speculative"),
                ua.speculative,
                ub.speculative,
            );
            d.usize(
                &format!("backend_usage[{i}].cancelled"),
                ua.cancelled,
                ub.cancelled,
            );
            d.f64(&format!("backend_usage[{i}].cost"), ua.cost, ub.cost);
            d.f64(&format!("backend_usage[{i}].qpu_ms"), ua.qpu_ms, ub.qpu_ms);
        }
    }
    d.usize("waves.len", a.waves.len(), b.waves.len());
    if !d.done() {
        for (i, (wa, wb)) in a.waves.iter().zip(&b.waves).enumerate() {
            d.usize(&format!("waves[{i}].wave"), wa.wave, wb.wave);
            d.usize(
                &format!("waves[{i}].first_read"),
                wa.first_read,
                wb.first_read,
            );
            d.usize(&format!("waves[{i}].reads"), wa.reads, wb.reads);
            d.usize(
                &format!("waves[{i}].allocation.len"),
                wa.allocation.len(),
                wb.allocation.len(),
            );
            if !d.done() {
                for (j, (aa, ab)) in wa.allocation.iter().zip(&wb.allocation).enumerate() {
                    d.str(
                        &format!("waves[{i}].allocation[{j}].sampler"),
                        &aa.sampler,
                        &ab.sampler,
                    );
                    d.usize(
                        &format!("waves[{i}].allocation[{j}].reads"),
                        aa.reads,
                        ab.reads,
                    );
                }
            }
            d.usize(
                &format!("waves[{i}].elite_seeded"),
                wa.elite_seeded,
                wb.elite_seeded,
            );
        }
    }
    d.str("termination", &a.termination, &b.termination);
    // Decomposition orchestration (schema v7): strategy, level progression
    // and window fold-back outcomes are digest inputs, so a divergent
    // decomposed replay localizes here (wall times are not compared).
    d.usize(
        "decomposition.is_some",
        usize::from(a.decomposition.is_some()),
        usize::from(b.decomposition.is_some()),
    );
    if !d.done() {
        if let (Some(da), Some(db)) = (&a.decomposition, &b.decomposition) {
            d.str("decomposition.strategy", &da.strategy, &db.strategy);
            d.usize("decomposition.window_cap", da.window_cap, db.window_cap);
            d.usize("decomposition.sub_solves", da.sub_solves, db.sub_solves);
            d.usize("decomposition.levels.len", da.levels.len(), db.levels.len());
            if !d.done() {
                for (i, (la, lb)) in da.levels.iter().zip(&db.levels).enumerate() {
                    d.usize(
                        &format!("decomposition.levels[{i}].level"),
                        la.level,
                        lb.level,
                    );
                    d.usize(&format!("decomposition.levels[{i}].size"), la.size, lb.size);
                    d.usize(
                        &format!("decomposition.levels[{i}].solved_vars"),
                        la.solved_vars,
                        lb.solved_vars,
                    );
                    d.f64(
                        &format!("decomposition.levels[{i}].objective_before"),
                        la.objective_before,
                        lb.objective_before,
                    );
                    d.f64(
                        &format!("decomposition.levels[{i}].objective_after"),
                        la.objective_after,
                        lb.objective_after,
                    );
                }
            }
            d.usize(
                "decomposition.windows.len",
                da.windows.len(),
                db.windows.len(),
            );
            if !d.done() {
                for (i, (wa, wb)) in da.windows.iter().zip(&db.windows).enumerate() {
                    d.usize(
                        &format!("decomposition.windows[{i}].level"),
                        wa.level,
                        wb.level,
                    );
                    d.usize(
                        &format!("decomposition.windows[{i}].window"),
                        wa.window,
                        wb.window,
                    );
                    d.usize(
                        &format!("decomposition.windows[{i}].vars"),
                        wa.vars,
                        wb.vars,
                    );
                    d.f64(
                        &format!("decomposition.windows[{i}].objective_before"),
                        wa.objective_before,
                        wb.objective_before,
                    );
                    d.f64(
                        &format!("decomposition.windows[{i}].objective_after"),
                        wa.objective_after,
                        wb.objective_after,
                    );
                    d.usize(
                        &format!("decomposition.windows[{i}].accepted"),
                        usize::from(wa.accepted),
                        usize::from(wb.accepted),
                    );
                }
            }
        }
    }
    if let Some((f, av, bv)) = d.field {
        return Some(at(&f, av, bv));
    }

    // Every compared field agrees; if the digests still disagree, one
    // side is stale (or the encodings differ across versions).
    if a.trace_digest != b.trace_digest {
        return Some(at(
            "trace_digest",
            a.trace_digest.clone(),
            b.trace_digest.clone(),
        ));
    }
    None
}

/// Diffs two run manifests, localizing the first divergent read.
///
/// Only the determinism contract is compared: wall-clock fields, the
/// derived `acceptance_rate`, timestamps, `git_describe`, and the command
/// line are all ignored. Structural mismatches (different case lists,
/// different methods) are reported as divergences too — a replay that ran
/// different work is not a replay.
pub fn diff_manifests(a: &RunManifest, b: &RunManifest) -> TraceDiff {
    let structural = |field: &str, av: String, bv: String| {
        TraceDiff::Diverged(Box::new(Divergence {
            case: String::new(),
            method: String::new(),
            read: None,
            wave: None,
            slot: None,
            sampler: None,
            backend: None,
            field: field.to_string(),
            a: av,
            b: bv,
        }))
    };
    if a.schema != b.schema {
        return structural("schema", a.schema.to_string(), b.schema.to_string());
    }
    if a.cases.len() != b.cases.len() {
        return structural(
            "cases.len",
            a.cases.len().to_string(),
            b.cases.len().to_string(),
        );
    }
    let mut solves = 0usize;
    let mut reads = 0usize;
    for (ca, cb) in a.cases.iter().zip(&b.cases) {
        if ca.label != cb.label {
            return structural("case.label", ca.label.clone(), cb.label.clone());
        }
        if ca.methods.len() != cb.methods.len() {
            return TraceDiff::Diverged(Box::new(Divergence {
                case: ca.label.clone(),
                method: String::new(),
                read: None,
                wave: None,
                slot: None,
                sampler: None,
                backend: None,
                field: "methods.len".into(),
                a: ca.methods.len().to_string(),
                b: cb.methods.len().to_string(),
            }));
        }
        for (ma, mb) in ca.methods.iter().zip(&cb.methods) {
            if ma.method != mb.method {
                return TraceDiff::Diverged(Box::new(Divergence {
                    case: ca.label.clone(),
                    method: String::new(),
                    read: None,
                    wave: None,
                    slot: None,
                    sampler: None,
                    backend: None,
                    field: "method".into(),
                    a: ma.method.clone(),
                    b: mb.method.clone(),
                }));
            }
            if let Some(div) = diff_solve(&ca.label, &ma.method, &ma.solve, &mb.solve) {
                return TraceDiff::Diverged(Box::new(div));
            }
            solves += 1;
            reads += ma.solve.reads.len();
        }
    }
    TraceDiff::Identical {
        cases: a.cases.len(),
        solves,
        reads,
    }
}

/// Verifies every stored trace digest recomputes from its own record.
///
/// Catches stale or hand-edited manifests and records produced before
/// schema v6 (whose digests are empty). Returns every failure, not just
/// the first, so a wholesale-stale manifest reads as such.
pub fn audit_manifest(m: &RunManifest) -> Result<AuditSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut solves = 0usize;
    let mut reads = 0usize;
    for case in &m.cases {
        for method in &case.methods {
            let s = &method.solve;
            let expected = solve_trace_digest(s);
            if s.trace_digest.is_empty() {
                errors.push(format!(
                    "case '{}' method '{}': no trace digest (pre-v6 manifest? re-run to seal)",
                    case.label, method.method
                ));
            } else if s.trace_digest != expected {
                errors.push(format!(
                    "case '{}' method '{}': stored digest {} does not recompute ({expected}) — stale or hand-edited trace",
                    case.label, method.method, s.trace_digest
                ));
            }
            solves += 1;
            reads += s.reads.len();
        }
    }
    if errors.is_empty() {
        Ok(AuditSummary {
            cases: m.cases.len(),
            solves,
            reads,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlrb_telemetry::{
        CaseTrace, ConfigSnapshot, FaultRecord, MethodTrace, SampleSetSummary, TimingRecord,
        WaveAllocation, WaveRecord,
    };

    fn read(index: usize, seed: u64) -> ReadRecord {
        ReadRecord {
            read: index,
            sampler: if index % 2 == 0 { "SA" } else { "SQA" }.into(),
            seed,
            seeded: false,
            initial_energy: 10.0,
            best_energy: 1.0,
            final_energy: 0.5,
            sweeps: 100,
            proposals: 600,
            accepted: 150,
            acceptance_rate: 0.25,
            repair_steps: 3,
            polish_flips: 2,
            polish_improvement: 0.5,
            objective: 0.5,
            violation: 0.0,
            feasible: true,
            wall_ms: 1.25,
            attempts: 1,
            backoff_proposals: 0,
            faults: vec![],
            backend: "in-process".into(),
            speculated: false,
            cancelled_backend: None,
        }
    }

    fn manifest() -> RunManifest {
        let solve = SolveRecord {
            num_vars: 6,
            compiled_vars: 8,
            requested_reads: 4,
            reads: vec![read(0, 41), read(1, 42), read(2, 43), read(3, 44)],
            failed_reads: vec![],
            backend_usage: vec![],
            waves: vec![
                WaveRecord {
                    wave: 0,
                    first_read: 0,
                    reads: 2,
                    allocation: vec![WaveAllocation {
                        sampler: "SA".into(),
                        reads: 2,
                    }],
                    elite_seeded: 0,
                    wall_ms: 2.5,
                },
                WaveRecord {
                    wave: 1,
                    first_read: 2,
                    reads: 2,
                    allocation: vec![WaveAllocation {
                        sampler: "SA".into(),
                        reads: 2,
                    }],
                    elite_seeded: 1,
                    wall_ms: 2.5,
                },
            ],
            termination: "exhausted".into(),
            timing: TimingRecord {
                cpu_ms: 5.0,
                qpu_ms: 0.0,
            },
            summary: SampleSetSummary::default(),
            trace_digest: String::new(),
            decomposition: None,
        };
        let mut m = RunManifest::new("test", ConfigSnapshot::default());
        m.cases.push(CaseTrace {
            label: "tiny".into(),
            methods: vec![MethodTrace {
                method: "hybrid".into(),
                solve,
            }],
            sim: None,
        });
        m.finalize();
        m
    }

    #[test]
    fn identical_manifests_diff_clean() {
        let a = manifest();
        let b = a.clone();
        let diff = diff_manifests(&a, &b);
        assert_eq!(
            diff,
            TraceDiff::Identical {
                cases: 1,
                solves: 1,
                reads: 4
            }
        );
        assert!(diff.is_identical());
        assert!(diff.render().contains("4 read(s)"));
    }

    #[test]
    fn seed_divergence_is_localized_to_read_wave_and_field() {
        let a = manifest();
        let mut b = manifest();
        b.cases[0].methods[0].solve.reads[2].seed = 999;
        qlrb_telemetry::fingerprint::seal(&mut b.cases[0].methods[0].solve);
        let TraceDiff::Diverged(d) = diff_manifests(&a, &b) else {
            panic!("seed perturbation must diverge");
        };
        assert_eq!(d.case, "tiny");
        assert_eq!(d.method, "hybrid");
        assert_eq!(d.read, Some(2));
        assert_eq!(d.wave, Some(1));
        assert_eq!(d.slot, Some(0));
        assert_eq!(d.sampler.as_deref(), Some("SA"));
        assert_eq!(d.backend.as_deref(), Some("in-process"));
        assert_eq!(d.field, "seed");
        assert_eq!(d.a, "43");
        assert_eq!(d.b, "999");
        let line = d.render();
        assert!(line.contains("read 2"), "{line}");
        assert!(line.contains("wave 1 slot 0"), "{line}");
        assert!(line.contains("field 'seed'"), "{line}");
    }

    #[test]
    fn wall_clock_and_acceptance_rate_are_outside_the_contract() {
        let a = manifest();
        let mut b = manifest();
        {
            let s = &mut b.cases[0].methods[0].solve;
            s.reads[0].wall_ms = 99.0;
            s.reads[0].acceptance_rate = 0.5;
            s.waves[0].wall_ms = 99.0;
            s.timing.cpu_ms = 99.0;
        }
        // Digests are already sealed and exclude wall clocks, but strip
        // them to force the field-by-field path too.
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.cases[0].methods[0].solve.trace_digest.clear();
        b2.cases[0].methods[0].solve.trace_digest.clear();
        assert!(diff_manifests(&a, &b).is_identical());
        assert!(diff_manifests(&a2, &b2).is_identical());
    }

    #[test]
    fn one_ulp_float_divergence_renders_bits() {
        let a = manifest();
        let mut b = manifest();
        {
            let s = &mut b.cases[0].methods[0].solve;
            s.reads[1].best_energy = f64::from_bits(s.reads[1].best_energy.to_bits() + 1);
            qlrb_telemetry::fingerprint::seal(s);
        }
        let TraceDiff::Diverged(d) = diff_manifests(&a, &b) else {
            panic!("one-ulp perturbation must diverge");
        };
        assert_eq!(d.field, "best_energy");
        assert!(d.a.contains("0x"), "{}", d.a);
        assert!(d.b.contains("0x"), "{}", d.b);
        assert_ne!(d.a, d.b);
    }

    #[test]
    fn structural_divergences_are_reported() {
        let a = manifest();
        let mut b = manifest();
        b.cases[0].label = "other".into();
        let TraceDiff::Diverged(d) = diff_manifests(&a, &b) else {
            panic!("label change must diverge");
        };
        assert_eq!(d.field, "case.label");

        let mut c = manifest();
        c.cases.clear();
        let TraceDiff::Diverged(d) = diff_manifests(&a, &c) else {
            panic!("case-count change must diverge");
        };
        assert_eq!(d.field, "cases.len");

        let mut e = manifest();
        e.cases[0].methods[0].solve.reads.truncate(2);
        e.cases[0].methods[0].solve.waves.truncate(1);
        qlrb_telemetry::fingerprint::seal(&mut e.cases[0].methods[0].solve);
        let TraceDiff::Diverged(d) = diff_manifests(&a, &e) else {
            panic!("read-count change must diverge");
        };
        assert_eq!(d.field, "reads.len");
        assert_eq!(d.read, Some(2));
    }

    #[test]
    fn fault_chain_divergence_names_the_fault() {
        let a = manifest();
        let mut b = manifest();
        {
            let s = &mut b.cases[0].methods[0].solve;
            s.reads[0].faults.push(FaultRecord {
                attempt: 0,
                backend: "qpu".into(),
                error: "timeout".into(),
            });
            qlrb_telemetry::fingerprint::seal(s);
        }
        let TraceDiff::Diverged(d) = diff_manifests(&a, &b) else {
            panic!("fault injection must diverge");
        };
        assert_eq!(d.field, "faults.len");
        assert_eq!(d.read, Some(0));
        assert_eq!(d.wave, Some(0));
    }

    #[test]
    fn audit_accepts_sealed_and_rejects_stale_or_missing_digests() {
        let m = manifest();
        let summary = audit_manifest(&m).expect("sealed manifest must audit clean");
        assert_eq!(
            summary,
            AuditSummary {
                cases: 1,
                solves: 1,
                reads: 4
            }
        );

        let mut stale = manifest();
        stale.cases[0].methods[0].solve.reads[0].seed = 7; // not resealed
        let errors = audit_manifest(&stale).expect_err("stale digest must fail");
        assert!(errors[0].contains("does not recompute"), "{}", errors[0]);

        let mut unsealed = manifest();
        unsealed.cases[0].methods[0].solve.trace_digest.clear();
        let errors = audit_manifest(&unsealed).expect_err("missing digest must fail");
        assert!(errors[0].contains("no trace digest"), "{}", errors[0]);
    }
}
