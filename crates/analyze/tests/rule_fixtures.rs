//! One deliberately-broken model per lint rule, asserting the exact rule id
//! fires — plus clean-model baselines proving the rules stay quiet on
//! well-formed inputs. (The `qubit-budget-mismatch` rule needs `LrpCqm` and
//! is exercised from `qlrb-core`'s test suite instead.)

use qlrb_analyze::{lint_bqm, lint_cqm, lint_cqm_with_penalty, lint_penalty, RuleId, Severity};
use qlrb_model::bqm::BinaryQuadraticModel;
use qlrb_model::cqm::{Cqm, Sense};
use qlrb_model::expr::{LinearExpr, Var};
use qlrb_model::penalty::{PenaltyConfig, PenaltyStyle};

fn expr(terms: &[(u32, f64)]) -> LinearExpr {
    let mut e = LinearExpr::new();
    for &(v, c) in terms {
        e.add_term(Var(v), c);
    }
    e
}

/// A small well-formed model: objective over both vars, both constrained.
fn clean_model() -> Cqm {
    let mut cqm = Cqm::new(2);
    let sum = expr(&[(0, 1.0), (1, 1.0)]);
    cqm.add_squared_term(sum.clone(), 1.0, 1.0);
    cqm.add_constraint(sum, Sense::Le, 1.0, "cap");
    cqm
}

#[test]
fn clean_model_is_clean() {
    let report = lint_cqm(&clean_model());
    assert!(
        report.is_clean(),
        "unexpected findings:\n{}",
        report.render()
    );
    let auto = PenaltyConfig::auto(&clean_model(), 2.0, PenaltyStyle::default());
    assert!(lint_cqm_with_penalty(&clean_model(), &auto).is_clean());
}

#[test]
fn unreferenced_variable_fires() {
    let mut cqm = Cqm::new(3); // var 2 never mentioned
    let sum = expr(&[(0, 1.0), (1, 1.0)]);
    cqm.add_squared_term(sum.clone(), 1.0, 1.0);
    cqm.add_constraint(sum, Sense::Le, 1.0, "cap");
    let report = lint_cqm(&cqm);
    assert!(report.has_rule(RuleId::UnreferencedVariable));
    assert!(!report.has_errors(), "wasted qubits are warnings");
}

#[test]
fn unconstrained_variable_fires() {
    let mut cqm = Cqm::new(2);
    cqm.add_squared_term(expr(&[(0, 1.0), (1, 1.0)]), 1.0, 1.0);
    cqm.add_constraint(expr(&[(0, 1.0)]), Sense::Le, 1.0, "cap0"); // var 1 unconstrained
    let report = lint_cqm(&cqm);
    assert!(report.has_rule(RuleId::UnconstrainedVariable));
    assert!(!report.has_rule(RuleId::UnreferencedVariable));
}

#[test]
fn degenerate_one_hot_fires() {
    let mut cqm = clean_model();
    cqm.add_constraint(expr(&[(0, 1.0)]), Sense::Eq, 1.0, "pick[0]");
    let report = lint_cqm(&cqm);
    assert!(report.has_rule(RuleId::DegenerateOneHot));
}

#[test]
fn overlapping_one_hot_fires() {
    let mut cqm = Cqm::new(3);
    cqm.add_squared_term(expr(&[(0, 1.0), (1, 1.0), (2, 1.0)]), 1.0, 1.0);
    cqm.add_constraint(expr(&[(0, 1.0), (1, 1.0)]), Sense::Eq, 1.0, "pick[a]");
    cqm.add_constraint(expr(&[(0, 1.0), (2, 1.0)]), Sense::Eq, 1.0, "pick[b]");
    let report = lint_cqm(&cqm);
    assert!(report.has_rule(RuleId::OverlappingOneHot));
    // Disjoint groups must not fire.
    let mut ok = Cqm::new(4);
    ok.add_squared_term(expr(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]), 1.0, 1.0);
    ok.add_constraint(expr(&[(0, 1.0), (1, 1.0)]), Sense::Eq, 1.0, "pick[a]");
    ok.add_constraint(expr(&[(2, 1.0), (3, 1.0)]), Sense::Eq, 1.0, "pick[b]");
    assert!(!lint_cqm(&ok).has_rule(RuleId::OverlappingOneHot));
}

#[test]
fn penalty_below_bound_fires() {
    let cqm = clean_model();
    let scale = cqm.objective_unit_scale();
    let weak = PenaltyConfig::uniform(scale / 2.0, PenaltyStyle::default());
    let report = lint_cqm_with_penalty(&cqm, &weak);
    assert!(report.has_rule(RuleId::PenaltyBelowBound));
    assert!(report.has_errors());

    // The auto-derived config always clears its own bound.
    let auto = PenaltyConfig::auto(&cqm, 1.0, PenaltyStyle::default());
    assert!(!lint_penalty(&cqm, &auto).has_rule(RuleId::PenaltyBelowBound));
}

#[test]
fn penalty_bound_respects_unbalanced_style() {
    // Unbalanced penalization charges weight·(λ₁ + λ₂) at unit violation:
    // a weight that clears the bound for the quadratic style can still be
    // too weak once the small λ coefficients are folded in.
    let cqm = clean_model();
    let scale = cqm.objective_unit_scale();
    let style = PenaltyStyle::Unbalanced { l1: 0.2, l2: 0.05 };
    let cfg = PenaltyConfig::uniform(scale, style);
    assert!(lint_penalty(&cqm, &cfg).has_rule(RuleId::PenaltyBelowBound));
    let strong = PenaltyConfig::uniform(scale * 4.0, style);
    assert!(lint_penalty(&cqm, &strong).is_clean());
}

#[test]
fn coefficient_overflow_fires() {
    // Magnitude: a 2³² coefficient squares past 2⁵³.
    let mut cqm = Cqm::new(1);
    cqm.add_squared_term(expr(&[(0, 4.3e9)]), 0.0, 1.0);
    let report = lint_cqm(&cqm);
    assert!(report.has_rule(RuleId::CoefficientOverflow));

    // Non-finite input is an error, not a warning.
    let mut nan = Cqm::new(1);
    nan.add_squared_term(expr(&[(0, f64::NAN)]), 0.0, 1.0);
    let report = lint_cqm(&nan);
    assert!(report.has_rule(RuleId::CoefficientOverflow));
    assert!(report.has_errors());
}

#[test]
fn infeasible_bound_fires() {
    let mut cqm = clean_model();
    cqm.add_constraint(expr(&[(0, 1.0), (1, 1.0)]), Sense::Le, -1.0, "impossible");
    let report = lint_cqm(&cqm);
    assert!(report.has_rule(RuleId::InfeasibleBound));
    assert!(report.has_errors());

    // Equality that cannot be reached from above.
    let mut cqm = clean_model();
    cqm.add_constraint(expr(&[(0, 1.0), (1, 1.0)]), Sense::Eq, 5.0, "unreachable");
    assert!(lint_cqm(&cqm).has_rule(RuleId::InfeasibleBound));
}

#[test]
fn presolve_proven_infeasibility_fires_at_model_level() {
    // Each constraint is individually satisfiable; together they force
    // x0 + x1 = 2 and x0 + x1 ≤ 1.
    let mut cqm = Cqm::new(2);
    cqm.add_squared_term(expr(&[(0, 1.0), (1, 1.0)]), 1.0, 1.0);
    cqm.add_constraint(expr(&[(0, 1.0), (1, 1.0)]), Sense::Eq, 2.0, "both");
    cqm.add_constraint(expr(&[(0, 1.0), (1, 1.0)]), Sense::Le, 1.0, "at-most-one");
    let report = lint_cqm(&cqm);
    assert!(
        report.has_rule(RuleId::InfeasibleBound),
        "{}",
        report.render()
    );
}

#[test]
fn out_of_bounds_reference_is_an_error_not_a_panic() {
    let mut cqm = Cqm::new(1);
    cqm.add_constraint(expr(&[(7, 1.0)]), Sense::Le, 1.0, "oob");
    let report = lint_cqm(&cqm);
    assert!(report.has_errors());
}

#[test]
fn duplicate_quadratic_fires() {
    // `add_quadratic` merges duplicates, so a broken adjacency can only
    // arrive through deserialization — exactly the path linted here.
    let json = r#"{
        "linear": [0.0, 0.0],
        "adj": [[[1, 2.0], [1, 3.0]], [[0, 2.0], [0, 3.0]]],
        "offset": 0.0
    }"#;
    let bqm: BinaryQuadraticModel = serde_json::from_str(json).expect("stub json parses");
    let report = lint_bqm(&bqm);
    assert!(
        report.has_rule(RuleId::DuplicateQuadratic),
        "{}",
        report.render()
    );
}

#[test]
fn asymmetric_quadratic_fires() {
    // Row 0 couples to 1 with weight 2, row 1 has no mirror entry.
    let json = r#"{
        "linear": [0.0, 0.0],
        "adj": [[[1, 2.0]], []],
        "offset": 0.0
    }"#;
    let bqm: BinaryQuadraticModel = serde_json::from_str(json).expect("stub json parses");
    let report = lint_bqm(&bqm);
    assert!(
        report.has_rule(RuleId::AsymmetricQuadratic),
        "{}",
        report.render()
    );
    assert!(report.has_errors());
}

#[test]
fn well_formed_bqm_is_clean() {
    let mut bqm = BinaryQuadraticModel::new(3);
    bqm.add_linear(Var(0), 1.0);
    bqm.add_quadratic(Var(0), Var(1), 2.0);
    bqm.add_quadratic(Var(1), Var(2), -0.5);
    bqm.add_quadratic(Var(0), Var(1), 1.0); // merged, not duplicated
    assert!(lint_bqm(&bqm).is_clean());
}

#[test]
fn json_report_names_the_rule() {
    let mut cqm = clean_model();
    cqm.add_constraint(expr(&[(0, 1.0)]), Sense::Le, -1.0, "impossible");
    let json = lint_cqm(&cqm).to_json();
    assert!(json.contains("\"infeasible-bound\""));
    assert!(json.contains("impossible"));
}

#[test]
fn severity_split_matches_catalogue() {
    // Reference rules warn; bound violations error.
    let mut cqm = Cqm::new(3);
    cqm.add_squared_term(expr(&[(0, 1.0)]), 1.0, 1.0);
    cqm.add_constraint(expr(&[(0, 1.0)]), Sense::Le, -1.0, "impossible");
    let report = lint_cqm(&cqm);
    for d in &report.diagnostics {
        match d.rule {
            RuleId::UnreferencedVariable | RuleId::UnconstrainedVariable => {
                assert_eq!(d.severity, Severity::Warning);
            }
            RuleId::InfeasibleBound => assert_eq!(d.severity, Severity::Error),
            other => panic!("unexpected rule {other}"),
        }
    }
}
