//! End-to-end scenario: mesh + lake + cost model → LRP instances.

use qlrb_core::Instance;

use crate::mesh::Mesh;
use crate::sfc::split_even;
use crate::swe::OscillatingLake;

/// Per-cell traversal cost model for the ADER-DG + a-posteriori-FV scheme:
/// dry cells are nearly free, wet cells pay the DG update, and troubled
/// (shoreline) cells additionally pay the finite-volume recompute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of skipping over a dry cell.
    pub dry: f64,
    /// Cost of a regular wet-cell DG update.
    pub wet: f64,
    /// Multiplier on `wet` for troubled cells (limiter fires → FV fallback).
    pub limiter_factor: f64,
    /// Depth threshold under which a wet cell counts as troubled.
    pub trouble_band: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            dry: 0.02,
            wet: 1.0,
            limiter_factor: 4.0,
            trouble_band: 0.01,
        }
    }
}

/// The full oscillating-lake scenario.
///
/// ```
/// use samoa_mini::LakeScenario;
/// let scenario = LakeScenario::small();
/// let inst = scenario.to_instance();            // LRP input
/// assert_eq!(inst.num_procs(), 8);
/// assert!(inst.stats().imbalance_ratio > 1.0);  // the lake is unfair
/// ```
#[derive(Debug, Clone)]
pub struct LakeScenario {
    /// Compute nodes (`M`).
    pub nodes: usize,
    /// Sections (= tasks) per node (`n`).
    pub sections_per_node: usize,
    /// Minimum refinement depth.
    pub d_min: u32,
    /// Maximum refinement depth (extra refinement near the shoreline).
    pub d_max: u32,
    /// Simulation time at which loads are sampled.
    pub time: f64,
    /// The analytic lake.
    pub lake: OscillatingLake,
    /// The cost model.
    pub cost: CostModel,
}

impl LakeScenario {
    /// A small default scenario (8 nodes × 16 sections) for tests/examples.
    pub fn small() -> Self {
        Self {
            nodes: 8,
            sections_per_node: 16,
            d_min: 10,
            d_max: 12,
            time: 0.0,
            lake: OscillatingLake::default(),
            cost: CostModel::default(),
        }
    }

    /// Builds the adaptively refined mesh: uniform `d_min`, refined toward
    /// `d_max` in the shoreline band where the limiter is expected to fire.
    pub fn build_mesh(&self) -> Mesh {
        let lake = self.lake;
        let t = self.time;
        let band = self.cost.trouble_band * 4.0;
        Mesh::adaptive(self.d_min, self.d_max, move |c| {
            lake.near_shoreline(c[0], c[1], t, band)
        })
    }

    /// Cost of a cell with the given water depth.
    pub fn cost_of_depth(&self, d: f64) -> f64 {
        if d <= 0.0 {
            self.cost.dry
        } else if d < self.cost.trouble_band {
            self.cost.wet * self.cost.limiter_factor
        } else {
            self.cost.wet
        }
    }

    /// Cost of a single cell at the sample time (analytic water state).
    pub fn cell_cost(&self, x: f64, y: f64) -> f64 {
        self.cost_of_depth(self.lake.depth(x, y, self.time))
    }

    /// Per-section (= per-task) costs: the mesh's Sierpinski-ordered cells
    /// are cut into `nodes·sections_per_node` equal-cell-count ranges (the
    /// incorrect uniform-cost partitioning), and each range's true cost is
    /// accumulated. The water state is supplied as a depth function so the
    /// analytic lake and the numerical FV solution are interchangeable.
    pub fn section_costs_from(&self, depth: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let mesh = self.build_mesh();
        let cell_costs: Vec<f64> = mesh
            .leaves()
            .iter()
            .map(|tri| {
                let c = tri.centroid();
                self.cost_of_depth(depth(c[0], c[1]))
            })
            .collect();
        let sections = self.nodes * self.sections_per_node;
        split_even(cell_costs.len(), sections)
            .into_iter()
            .map(|r| cell_costs[r].iter().sum())
            .collect()
    }

    /// Section costs from the analytic oscillating-lake solution.
    pub fn section_costs(&self) -> Vec<f64> {
        self.section_costs_from(|x, y| self.lake.depth(x, y, self.time))
    }

    /// Section costs from an actual finite-volume run: the solver starts at
    /// the lake's `t = 0` state and integrates the shallow-water equations
    /// to the scenario's sample time on a `grid × grid` mesh. This is the
    /// full numerical pipeline sam(oa)² performs; the analytic path is its
    /// exact-solution shortcut.
    pub fn section_costs_via_fv(&self, grid: usize) -> Vec<f64> {
        let mut fv = crate::fv::FvSolver::from_lake(&self.lake, grid, 0.0);
        fv.run_until(self.time, 0.4);
        self.section_costs_from(|x, y| fv.depth_at(x, y))
    }

    /// LRP instance extracted from the finite-volume pipeline (cf.
    /// [`LakeScenario::to_instance`]).
    pub fn to_instance_via_fv(&self, grid: usize) -> Instance {
        let n = self.sections_per_node as u64;
        let costs = self.section_costs_via_fv(grid);
        let weights = costs
            .chunks(self.sections_per_node)
            .map(|chunk| chunk.iter().sum::<f64>() / n as f64)
            .collect();
        Instance::uniform(n, weights).expect("scenario produces valid weights") // qlrb-lint: allow(no-unwrap)
    }

    /// Per-node loads at a *different* time `t`, after applying a migration
    /// plan that was computed for the scenario's own sample time.
    ///
    /// The water keeps moving after a rebalancing decision: this evaluates
    /// how a plan ages. Moved sections are taken deterministically from the
    /// *tail* of each donor's SFC block (donors iterate in index order, as
    /// do receivers), then every section's cost is re-evaluated at `t` and
    /// summed per owner.
    ///
    /// # Panics
    /// Panics if the plan does not match the scenario's node/section counts.
    pub fn drifted_loads(&self, plan: &qlrb_core::MigrationMatrix, t: f64) -> Vec<f64> {
        let n = self.sections_per_node;
        let m = self.nodes;
        assert_eq!(plan.num_procs(), m, "plan covers a different node count");
        // owner[s] = node holding section s after the plan.
        let mut owner: Vec<usize> = (0..m * n).map(|s| s / n).collect();
        for j in 0..m {
            // Donor j's sections, tail first.
            let mut next_tail = (j + 1) * n;
            for i in 0..m {
                if i == j {
                    continue;
                }
                for _ in 0..plan.get(i, j) {
                    assert!(
                        next_tail > j * n,
                        "plan moves more sections than node {j} owns"
                    );
                    next_tail -= 1;
                    owner[next_tail] = i;
                }
            }
        }
        let at_t = LakeScenario {
            time: t,
            ..self.clone()
        };
        let costs = at_t.section_costs();
        let mut loads = vec![0.0; m];
        for (s, &o) in owner.iter().enumerate() {
            loads[o] += costs[s];
        }
        loads
    }

    /// Per-node loads: sections are assigned blockwise (node `i` owns
    /// sections `i·n .. (i+1)·n`, i.e. a contiguous span of the curve).
    pub fn node_loads(&self) -> Vec<f64> {
        let costs = self.section_costs();
        costs
            .chunks(self.sections_per_node)
            .map(|chunk| chunk.iter().sum())
            .collect()
    }

    /// Extracts the LRP instance in the paper's input model: per-node task
    /// weight = node load / sections per node (tasks within a node are
    /// uniform, exactly like the paper's synthesized inputs).
    pub fn to_instance(&self) -> Instance {
        let n = self.sections_per_node as u64;
        let weights = self.node_loads().iter().map(|l| l / n as f64).collect();
        Instance::uniform(n, weights).expect("scenario produces valid weights") // qlrb-lint: allow(no-unwrap)
    }
}

/// The paper's Table V configuration: 32 nodes × 208 tasks with a baseline
/// imbalance ratio of exactly `R_imb = 4.1994`.
///
/// The mesh/lake pipeline produces a *peaky* load vector (most of the curve
/// is dry and cheap; the lake's nodes are expensive); its raw ratio
/// overshoots the paper's, so the deviations from the mean are scaled down
/// affinely — `w′ = w̄ + s·(w − w̄)` leaves `L_avg` fixed and scales
/// `R_imb` exactly by `s`. The scenario parameters guarantee `s ≤ 1`, so no
/// weight can go negative.
pub fn table5_instance() -> Instance {
    const TARGET_RIMB: f64 = 4.1994;
    let scenario = LakeScenario {
        nodes: 32,
        sections_per_node: 208,
        d_min: 13,
        d_max: 15,
        time: 0.0,
        lake: OscillatingLake {
            // A contracted lake: wet area (and with it the expensive cells)
            // concentrates on few nodes, pushing the raw ratio above 4.2.
            a: 0.22,
            amplitude: 0.6,
            ..OscillatingLake::default()
        },
        cost: CostModel {
            dry: 0.01,
            wet: 1.0,
            limiter_factor: 6.0,
            trouble_band: 0.004,
        },
    };
    let inst = scenario.to_instance();
    let stats = inst.stats();
    assert!(
        stats.imbalance_ratio >= TARGET_RIMB,
        "scenario must overshoot the target ratio (got {})",
        stats.imbalance_ratio
    );
    let s = TARGET_RIMB / stats.imbalance_ratio;
    let w_avg = inst.weights().iter().sum::<f64>() / inst.num_procs() as f64;
    let weights = inst
        .weights()
        .iter()
        .map(|w| w_avg + s * (w - w_avg))
        .collect();
    // qlrb-lint: allow(no-unwrap)
    Instance::uniform(inst.tasks_per_proc(), weights).expect("affine scaling keeps weights valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_costs_cover_all_sections() {
        let s = LakeScenario::small();
        let costs = s.section_costs();
        assert_eq!(costs.len(), 8 * 16);
        assert!(costs.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn lake_nodes_carry_more_load() {
        let s = LakeScenario::small();
        let loads = s.node_loads();
        assert_eq!(loads.len(), 8);
        let (min, max) = loads.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &l| {
            (lo.min(l), hi.max(l))
        });
        assert!(
            max / min > 2.0,
            "wet/dry cost contrast should create real imbalance: {loads:?}"
        );
    }

    #[test]
    fn instance_matches_scenario_shape() {
        let s = LakeScenario::small();
        let inst = s.to_instance();
        assert_eq!(inst.num_procs(), 8);
        assert_eq!(inst.tasks_per_proc(), 16);
        // Per-node load is preserved by the uniformization.
        let loads = s.node_loads();
        for (a, b) in inst.loads().iter().zip(loads) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn imbalance_moves_with_the_water() {
        // As the lake expands, the load spreads to more nodes and the
        // imbalance ratio changes — the dynamic behaviour that defeats
        // sam(oa)²'s static cost model.
        let mut s = LakeScenario::small();
        let r_contracted = s.to_instance().stats().imbalance_ratio;
        s.time = s.lake.period() / 2.0; // fully expanded
        let r_expanded = s.to_instance().stats().imbalance_ratio;
        assert!(r_contracted > 0.1 && r_expanded > 0.1);
        assert!(
            (r_contracted - r_expanded).abs() > 0.05,
            "ratios should differ: {r_contracted} vs {r_expanded}"
        );
    }

    #[test]
    fn drifted_loads_match_static_evaluation_at_sample_time() {
        use qlrb_core::MigrationMatrix;
        let s = LakeScenario::small();
        let inst = s.to_instance();
        // A hand-made plan: node with max load sheds 3 sections to min.
        let loads = inst.loads();
        let hi = (0..8)
            .max_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .unwrap();
        let lo = (0..8)
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .unwrap();
        let mut plan = MigrationMatrix::identity(&inst);
        plan.migrate(hi, lo, 3).unwrap();
        let drift0 = s.drifted_loads(&plan, s.time);
        // At the sample time, totals agree with the section-level sums:
        // the donor lost its 3 tail sections, the receiver gained them.
        let costs = s.section_costs();
        let tail: f64 = costs[(hi + 1) * 16 - 3..(hi + 1) * 16].iter().sum();
        let node_costs: Vec<f64> = costs.chunks(16).map(|c| c.iter().sum()).collect();
        assert!((drift0[hi] - (node_costs[hi] - tail)).abs() < 1e-9);
        assert!((drift0[lo] - (node_costs[lo] + tail)).abs() < 1e-9);
        // Total cost is conserved by any reassignment.
        let total: f64 = costs.iter().sum();
        assert!((drift0.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn plans_age_as_the_water_moves() {
        use qlrb_core::ImbalanceStats;
        use qlrb_core::MigrationMatrix;
        let s = LakeScenario::small();
        let inst = s.to_instance();
        // A strong rebalancing at t = 0, built with the deficit-capped seed
        // used by the hybrid solver.
        let plan = qlrb_core::solve::greedy_seed_plan(&inst, inst.num_tasks());
        let id = MigrationMatrix::identity(&inst);
        // Benefit of the plan over doing nothing, as the water moves. The
        // scenario's *baseline* imbalance is itself time-varying, so the
        // meaningful signal is the gap to the identity at the same time.
        let r_of = |p: &MigrationMatrix, t: f64| {
            ImbalanceStats::from_loads(&s.drifted_loads(p, t)).imbalance_ratio
        };
        let benefits: Vec<f64> = (0..5)
            .map(|k| {
                let t = s.time + k as f64 * s.lake.period() / 8.0;
                r_of(&id, t) - r_of(&plan, t)
            })
            .collect();
        assert!(benefits[0] > 0.0, "the plan helps at its design time");
        let max = benefits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (benefits[0] - max).abs() < 1e-12,
            "the benefit peaks at the design time and decays: {benefits:?}"
        );
        assert!(
            benefits[1..].iter().any(|&b| b < benefits[0] * 0.75),
            "aging should erode a meaningful part of the benefit: {benefits:?}"
        );
        // The identity plan's drift matches a re-extracted instance.
        let t2 = s.time + s.lake.period() / 4.0;
        let drifted = s.drifted_loads(&id, t2);
        let re_extracted = LakeScenario {
            time: t2,
            ..s.clone()
        }
        .node_loads();
        for (a, b) in drifted.iter().zip(&re_extracted) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fv_pipeline_agrees_with_analytic_costs() {
        // The numerical solver and the exact solution must induce similar
        // imbalance structure (same workload, different water source).
        let mut s = LakeScenario::small();
        s.time = s.lake.period() / 10.0; // some real dynamics happened
        let analytic = s.to_instance();
        let numeric = s.to_instance_via_fv(96);
        let ra = analytic.stats().imbalance_ratio;
        let rn = numeric.stats().imbalance_ratio;
        assert!(
            (ra - rn).abs() / ra < 0.35,
            "imbalance from FV ({rn}) far from analytic ({ra})"
        );
        // Node-by-node loads correlate strongly.
        let la = analytic.loads();
        let ln = numeric.loads();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ma, mn) = (mean(&la), mean(&ln));
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vn = 0.0;
        for (a, b) in la.iter().zip(&ln) {
            cov += (a - ma) * (b - mn);
            va += (a - ma).powi(2);
            vn += (b - mn).powi(2);
        }
        let corr = cov / (va.sqrt() * vn.sqrt());
        assert!(corr > 0.95, "load correlation only {corr}");
    }

    #[test]
    fn table5_pins_the_paper_baseline() {
        let inst = table5_instance();
        assert_eq!(inst.num_procs(), 32);
        assert_eq!(inst.tasks_per_proc(), 208);
        let r = inst.stats().imbalance_ratio;
        assert!(
            (r - 4.1994).abs() < 1e-9,
            "baseline R_imb must match the paper exactly, got {r}"
        );
        assert!(inst.weights().iter().all(|&w| w >= 0.0));
    }
}
