//! A finite-volume shallow-water solver with wet/dry handling.
//!
//! sam(oa)² integrates the 2D shallow-water equations numerically; the cost
//! model in [`crate::scenario`] uses Thacker's *exact* solution for the
//! oscillating lake. To show the two agree — i.e., that the analytic lake
//! is a faithful stand-in for a real solver's state — this module implements
//! the standard first-order scheme for SWE with bathymetry:
//!
//! * conserved state `(h, hu, hv)` per Cartesian cell;
//! * Rusanov (local Lax–Friedrichs) interface fluxes;
//! * **hydrostatic reconstruction** (Audusse et al. 2004) for the bed-slope
//!   source term, which keeps lakes at rest exactly at rest and handles the
//!   moving wet/dry front without generating spurious shorelines;
//! * CFL-limited explicit Euler steps;
//! * a troubled-cell detector (near-dry or steep surface gradient), the
//!   numerical counterpart of the ADER-DG a-posteriori limiter whose firing
//!   pattern drives the paper's load imbalance.

use crate::swe::OscillatingLake;

/// Dry tolerance: depths below this are treated as zero.
const H_DRY: f64 = 1e-8;

/// Gravity default (matches [`OscillatingLake`]).
const G: f64 = 9.81;

/// A uniform Cartesian grid over the unit square.
#[derive(Debug, Clone)]
pub struct FvSolver {
    n: usize,
    dx: f64,
    g: f64,
    /// Bathymetry elevation per cell.
    zb: Vec<f64>,
    /// Water depth per cell.
    h: Vec<f64>,
    /// Momentum components per cell.
    hu: Vec<f64>,
    hv: Vec<f64>,
    /// Simulated time.
    t: f64,
}

impl FvSolver {
    /// Initializes an `n × n` solver from the analytic lake state at `t0`.
    ///
    /// Velocities of the radially-symmetric Thacker solution at `t = 0` (and
    /// any extremum of the oscillation) are zero; starting there makes the
    /// momentum initialization exact.
    pub fn from_lake(lake: &OscillatingLake, n: usize, t0: f64) -> Self {
        assert!(n >= 4, "grid too coarse");
        let dx = 1.0 / n as f64;
        let mut zb = Vec::with_capacity(n * n);
        let mut h = Vec::with_capacity(n * n);
        for j in 0..n {
            for i in 0..n {
                let x = (i as f64 + 0.5) * dx;
                let y = (j as f64 + 0.5) * dx;
                let r2 = (x - lake.center[0]).powi(2) + (y - lake.center[1]).powi(2);
                // Bowl: z_b = h0·(r²/a² − 1).
                zb.push(lake.h0 * (r2 / (lake.a * lake.a) - 1.0));
                h.push(lake.depth(x, y, t0));
            }
        }
        Self {
            n,
            dx,
            g: lake.g,
            zb,
            h,
            hu: vec![0.0; n * n],
            hv: vec![0.0; n * n],
            t: t0,
        }
    }

    /// A flat-bottomed dam-break setup (left half wet), for shock tests.
    pub fn dam_break(n: usize, h_left: f64, h_right: f64) -> Self {
        assert!(n >= 4);
        let dx = 1.0 / n as f64;
        let mut h = Vec::with_capacity(n * n);
        for _j in 0..n {
            for i in 0..n {
                h.push(if (i as f64 + 0.5) * dx < 0.5 {
                    h_left
                } else {
                    h_right
                });
            }
        }
        Self {
            n,
            dx,
            g: G,
            zb: vec![0.0; n * n],
            h,
            hu: vec![0.0; n * n],
            hv: vec![0.0; n * n],
            t: 0.0,
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        j * self.n + i
    }

    /// Grid resolution per side.
    pub fn resolution(&self) -> usize {
        self.n
    }

    /// Overwrites one cell's bathymetry and depth (momentum reset to rest).
    /// Used by scenario builders that need non-bowl bathymetries.
    pub fn set_cell(&mut self, i: usize, j: usize, zb: f64, h: f64) {
        assert!(i < self.n && j < self.n, "cell out of range");
        assert!(h >= 0.0 && h.is_finite(), "depth must be finite and >= 0");
        let k = self.idx(i, j);
        self.zb[k] = zb;
        self.h[k] = h;
        self.hu[k] = 0.0;
        self.hv[k] = 0.0;
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Water depth field (row-major, `n × n`).
    pub fn depths(&self) -> &[f64] {
        &self.h
    }

    /// Depth at a physical point (nearest cell).
    pub fn depth_at(&self, x: f64, y: f64) -> f64 {
        let i = ((x / self.dx) as usize).min(self.n - 1);
        let j = ((y / self.dx) as usize).min(self.n - 1);
        self.h[self.idx(i, j)]
    }

    /// Total water volume.
    pub fn volume(&self) -> f64 {
        self.h.iter().sum::<f64>() * self.dx * self.dx
    }

    /// 1D Rusanov flux for SWE in the x-direction on reconstructed states.
    fn rusanov(g: f64, hl: f64, ul: f64, vl: f64, hr: f64, ur: f64, vr: f64) -> [f64; 3] {
        let fl = [hl * ul, hl * ul * ul + 0.5 * g * hl * hl, hl * ul * vl];
        let fr = [hr * ur, hr * ur * ur + 0.5 * g * hr * hr, hr * ur * vr];
        let cl = ul.abs() + (g * hl).sqrt();
        let cr = ur.abs() + (g * hr).sqrt();
        let a = cl.max(cr);
        [
            0.5 * (fl[0] + fr[0]) - 0.5 * a * (hr - hl),
            0.5 * (fl[1] + fr[1]) - 0.5 * a * (hr * ur - hl * ul),
            0.5 * (fl[2] + fr[2]) - 0.5 * a * (hr * vr - hl * vl),
        ]
    }

    /// Largest stable timestep under CFL number `cfl`.
    pub fn max_dt(&self, cfl: f64) -> f64 {
        let mut speed: f64 = 1e-12;
        for k in 0..self.n * self.n {
            if self.h[k] > H_DRY {
                let u = self.hu[k] / self.h[k];
                let v = self.hv[k] / self.h[k];
                let c = (self.g * self.h[k]).sqrt();
                speed = speed.max(u.abs() + c).max(v.abs() + c);
            }
        }
        cfl * self.dx / speed
    }

    /// Advances one explicit Euler step of size `dt` (reflective walls).
    pub fn step(&mut self, dt: f64) {
        let n = self.n;
        let mut dh = vec![0.0; n * n];
        let mut dhu = vec![0.0; n * n];
        let mut dhv = vec![0.0; n * n];
        let lam = dt / self.dx;

        // Primitive velocities with dry masking.
        let vel = |h: f64, q: f64| if h > H_DRY { q / h } else { 0.0 };

        // Interior interfaces, x then y, with hydrostatic reconstruction:
        // at an interface with bed step, depths are reconstructed against
        // the higher bed so a lake at rest produces exactly zero net flux.
        for j in 0..n {
            for i in 0..n - 1 {
                let (l, r) = (self.idx(i, j), self.idx(i + 1, j));
                let zmax = self.zb[l].max(self.zb[r]);
                let hl = (self.h[l] + self.zb[l] - zmax).max(0.0);
                let hr = (self.h[r] + self.zb[r] - zmax).max(0.0);
                let ul = vel(self.h[l], self.hu[l]);
                let vl = vel(self.h[l], self.hv[l]);
                let ur = vel(self.h[r], self.hu[r]);
                let vr = vel(self.h[r], self.hv[r]);
                let f = Self::rusanov(self.g, hl, ul, vl, hr, ur, vr);
                dh[l] -= lam * f[0];
                dh[r] += lam * f[0];
                // Momentum flux plus the hydrostatic-reconstruction
                // pressure correction: each side sees the shared flux
                // *plus* g/2·(h² − h*²) so a lake at rest feels exactly its
                // own hydrostatic pressure on both faces.
                let pl = 0.5 * self.g * (self.h[l] * self.h[l] - hl * hl);
                let pr = 0.5 * self.g * (self.h[r] * self.h[r] - hr * hr);
                dhu[l] -= lam * (f[1] + pl);
                dhu[r] += lam * (f[1] + pr);
                dhv[l] -= lam * f[2];
                dhv[r] += lam * f[2];
            }
        }
        for j in 0..n - 1 {
            for i in 0..n {
                let (l, r) = (self.idx(i, j), self.idx(i, j + 1));
                let zmax = self.zb[l].max(self.zb[r]);
                let hl = (self.h[l] + self.zb[l] - zmax).max(0.0);
                let hr = (self.h[r] + self.zb[r] - zmax).max(0.0);
                // Swap roles of (u, v): the normal component is v.
                let ul = vel(self.h[l], self.hv[l]);
                let tl = vel(self.h[l], self.hu[l]);
                let ur = vel(self.h[r], self.hv[r]);
                let tr = vel(self.h[r], self.hu[r]);
                let f = Self::rusanov(self.g, hl, ul, tl, hr, ur, tr);
                dh[l] -= lam * f[0];
                dh[r] += lam * f[0];
                let pl = 0.5 * self.g * (self.h[l] * self.h[l] - hl * hl);
                let pr = 0.5 * self.g * (self.h[r] * self.h[r] - hr * hr);
                dhv[l] -= lam * (f[1] + pl);
                dhv[r] += lam * (f[1] + pr);
                dhu[l] -= lam * f[2];
                dhu[r] += lam * f[2];
            }
        }
        // Reflective walls: a mirrored ghost state (equal depth, negated
        // normal velocity) exerts the hydrostatic wall pressure. Without
        // this, wall cells feel the interior pressure flux on one face only
        // and water creeps along the boundary.
        for j in 0..n {
            // Left wall (x = 0): ghost on the left of cell (0, j).
            let r = self.idx(0, j);
            let hvr = vel(self.h[r], self.hv[r]);
            let hur = vel(self.h[r], self.hu[r]);
            let f = Self::rusanov(self.g, self.h[r], -hur, hvr, self.h[r], hur, hvr);
            dh[r] += lam * f[0];
            dhu[r] += lam * f[1];
            dhv[r] += lam * f[2];
            // Right wall (x = 1): ghost on the right of cell (n−1, j).
            let l = self.idx(n - 1, j);
            let hvl = vel(self.h[l], self.hv[l]);
            let hul = vel(self.h[l], self.hu[l]);
            let f = Self::rusanov(self.g, self.h[l], hul, hvl, self.h[l], -hul, hvl);
            dh[l] -= lam * f[0];
            dhu[l] -= lam * f[1];
            dhv[l] -= lam * f[2];
        }
        for i in 0..n {
            // Bottom wall (y = 0): normal component is v.
            let r = self.idx(i, 0);
            let hvr = vel(self.h[r], self.hv[r]);
            let hur = vel(self.h[r], self.hu[r]);
            let f = Self::rusanov(self.g, self.h[r], -hvr, hur, self.h[r], hvr, hur);
            dh[r] += lam * f[0];
            dhv[r] += lam * f[1];
            dhu[r] += lam * f[2];
            // Top wall (y = 1).
            let l = self.idx(i, n - 1);
            let hvl = vel(self.h[l], self.hv[l]);
            let hul = vel(self.h[l], self.hu[l]);
            let f = Self::rusanov(self.g, self.h[l], hvl, hul, self.h[l], -hvl, hul);
            dh[l] -= lam * f[0];
            dhv[l] -= lam * f[1];
            dhu[l] -= lam * f[2];
        }

        for k in 0..n * n {
            self.h[k] = (self.h[k] + dh[k]).max(0.0);
            if self.h[k] <= H_DRY {
                self.h[k] = 0.0;
                self.hu[k] = 0.0;
                self.hv[k] = 0.0;
            } else {
                self.hu[k] += dhu[k];
                self.hv[k] += dhv[k];
            }
        }
        self.t += dt;
    }

    /// Runs until `t_end` with CFL-limited steps. Returns steps taken.
    pub fn run_until(&mut self, t_end: f64, cfl: f64) -> usize {
        let mut steps = 0;
        while self.t < t_end - 1e-12 {
            let dt = self.max_dt(cfl).min(t_end - self.t);
            self.step(dt);
            steps += 1;
            assert!(steps < 2_000_000, "runaway time loop");
        }
        steps
    }

    /// L1 difference between the solver's depth field and a reference
    /// function sampled at cell centers, normalized by the reference mass.
    pub fn l1_depth_error(&self, reference: impl Fn(f64, f64) -> f64) -> f64 {
        let mut err = 0.0;
        let mut mass = 0.0;
        for j in 0..self.n {
            for i in 0..self.n {
                let x = (i as f64 + 0.5) * self.dx;
                let y = (j as f64 + 0.5) * self.dx;
                let href = reference(x, y);
                err += (self.h[self.idx(i, j)] - href).abs();
                mass += href;
            }
        }
        if mass > 0.0 {
            err / mass
        } else {
            err
        }
    }

    /// Troubled-cell mask: wet cells that are nearly dry or sit on a steep
    /// free-surface gradient — where an a-posteriori DG limiter would fire.
    pub fn troubled_cells(&self, depth_band: f64, grad_limit: f64) -> Vec<bool> {
        let n = self.n;
        let mut mask = vec![false; n * n];
        for j in 0..n {
            for i in 0..n {
                let k = self.idx(i, j);
                if self.h[k] <= H_DRY {
                    continue;
                }
                if self.h[k] < depth_band {
                    mask[k] = true;
                    continue;
                }
                let eta = self.h[k] + self.zb[k];
                let mut steep = false;
                for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                    let (ni, nj) = (i as isize + di, j as isize + dj);
                    if ni < 0 || nj < 0 || ni >= n as isize || nj >= n as isize {
                        continue;
                    }
                    let nk = self.idx(ni as usize, nj as usize);
                    let neta = self.h[nk] + self.zb[nk];
                    if (eta - neta).abs() / self.dx > grad_limit {
                        steep = true;
                        break;
                    }
                }
                mask[k] = steep;
            }
        }
        mask
    }
}

impl FvSolver {
    /// Renders the water state as ASCII art (downsampled to `cols` columns):
    /// `' '` dry land, `'.'` shallow, `'~'` mid, `'#'` deep — with troubled
    /// cells overridden as `'!'`. For terminal demos and debugging.
    pub fn render_ascii(&self, cols: usize, trouble_band: f64) -> String {
        let cols = cols.clamp(8, self.n);
        let rows = cols / 2; // terminal cells are ~2x taller than wide
        let troubled = self.troubled_cells(trouble_band, 0.5);
        let h_max = self.h.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        let mut out = String::with_capacity((cols + 1) * rows);
        for r in (0..rows).rev() {
            for c in 0..cols {
                let i = c * self.n / cols;
                let j = r * self.n / rows;
                let k = self.idx(i, j);
                let ch = if self.h[k] <= 0.0 {
                    ' '
                } else if troubled[k] {
                    '!'
                } else if self.h[k] > 0.66 * h_max {
                    '#'
                } else if self.h[k] > 0.33 * h_max {
                    '~'
                } else {
                    '.'
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lake_at_rest_is_preserved() {
        // Well-balancedness: amplitude 0 must stay static to rounding.
        let lake = OscillatingLake {
            amplitude: 0.0,
            ..Default::default()
        };
        let mut fv = FvSolver::from_lake(&lake, 32, 0.0);
        let before = fv.depths().to_vec();
        fv.run_until(0.05, 0.4);
        let max_dev = fv
            .depths()
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dev < 1e-10,
            "lake at rest drifted by {max_dev} (not well-balanced)"
        );
        let max_mom = fv
            .hu
            .iter()
            .chain(&fv.hv)
            .fold(0.0f64, |m, &q| m.max(q.abs()));
        assert!(max_mom < 1e-10, "spurious momentum {max_mom}");
    }

    #[test]
    fn mass_is_conserved() {
        let lake = OscillatingLake::default();
        let mut fv = FvSolver::from_lake(&lake, 48, 0.0);
        let v0 = fv.volume();
        fv.run_until(0.2, 0.4);
        assert!(
            (fv.volume() - v0).abs() / v0 < 1e-12,
            "mass drift: {} vs {}",
            fv.volume(),
            v0
        );
    }

    #[test]
    fn tracks_thacker_solution() {
        let lake = OscillatingLake::default();
        let t_end = lake.period() / 8.0;
        let mut fv = FvSolver::from_lake(&lake, 64, 0.0);
        fv.run_until(t_end, 0.4);
        let err = fv.l1_depth_error(|x, y| lake.depth(x, y, t_end));
        assert!(
            err < 0.25,
            "FV deviates from the exact oscillating lake: L1 = {err}"
        );
        // Sanity of the comparison itself: against the WRONG time the error
        // must be clearly larger.
        let err_wrong = fv.l1_depth_error(|x, y| lake.depth(x, y, lake.period() / 2.0));
        assert!(err_wrong > 1.5 * err, "t_end: {err}; wrong t: {err_wrong}");
    }

    #[test]
    fn converges_with_resolution() {
        let lake = OscillatingLake::default();
        let t_end = lake.period() / 12.0;
        let mut errs = Vec::new();
        for n in [24usize, 48, 96] {
            let mut fv = FvSolver::from_lake(&lake, n, 0.0);
            fv.run_until(t_end, 0.4);
            errs.push(fv.l1_depth_error(|x, y| lake.depth(x, y, t_end)));
        }
        assert!(
            errs[2] < errs[0],
            "refinement must reduce the error: {errs:?}"
        );
    }

    #[test]
    fn dam_break_wave_moves_right() {
        let mut fv = FvSolver::dam_break(64, 1.0, 0.2);
        let v0 = fv.volume();
        fv.run_until(0.02, 0.4);
        assert!((fv.volume() - v0).abs() / v0 < 1e-12);
        // Depth just right of the dam has risen; the far right only sees
        // (small) numerical diffusion ahead of the physical wave.
        assert!(fv.depth_at(0.55, 0.5) > 0.2 + 1e-3);
        assert!((fv.depth_at(0.95, 0.5) - 0.2).abs() < 1e-3);
        // And the left side has started to drain.
        assert!(fv.depth_at(0.45, 0.5) < 1.0 - 1e-3);
    }

    #[test]
    fn ascii_rendering_shows_wet_and_dry() {
        let lake = OscillatingLake::default();
        let fv = FvSolver::from_lake(&lake, 64, 0.0);
        let art = fv.render_ascii(32, 0.01);
        assert!(art.contains('#'), "deep water rendered");
        assert!(art.contains(' '), "dry land rendered");
        assert_eq!(art.lines().count(), 16);
        assert!(art.lines().all(|l| l.len() == 32));
    }

    #[test]
    fn troubled_cells_hug_the_shoreline() {
        let lake = OscillatingLake::default();
        let mut fv = FvSolver::from_lake(&lake, 64, 0.0);
        fv.run_until(lake.period() / 16.0, 0.4);
        let mask = fv.troubled_cells(0.01, 1.0);
        let troubled = mask.iter().filter(|&&b| b).count();
        let wet = fv.depths().iter().filter(|&&h| h > 0.0).count();
        assert!(troubled > 0, "some cells must be troubled");
        assert!(
            troubled * 2 < wet,
            "the limiter fires on a minority of wet cells: {troubled}/{wet}"
        );
        // Troubled cells are shallow-ish: all within the outer half of the
        // wet disc radius.
        let rw = lake.wet_radius(fv.time());
        for j in 0..fv.resolution() {
            for i in 0..fv.resolution() {
                if mask[j * fv.resolution() + i] {
                    let x = (i as f64 + 0.5) * fv.dx;
                    let y = (j as f64 + 0.5) * fv.dx;
                    let r = ((x - lake.center[0]).powi(2) + (y - lake.center[1]).powi(2)).sqrt();
                    assert!(
                        r > rw * 0.4,
                        "troubled cell deep inside the lake at r = {r}"
                    );
                }
            }
        }
    }
}
