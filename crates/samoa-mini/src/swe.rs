//! Thacker's exact oscillating-lake solution of the shallow-water equations.
//!
//! The paper's sam(oa)² run simulates an *oscillating lake*: water sloshing
//! in a parabolic bowl, a classic wet/dry benchmark because an exact
//! solution exists (Thacker 1981, the radially-symmetric curved-surface
//! case). With bowl profile `z_b(r) = h₀·(r²/a² − 1)` the water depth is
//!
//! ```text
//! h(r, t) = h₀·( √(1−A²)/f(t) − (r²/a²)·(1−A²)/f(t)² ),   f(t) = 1 − A·cos(ωt)
//! ```
//!
//! clamped at zero (dry), with frequency `ω = √(8·g·h₀)/a` and amplitude
//! parameter `A ∈ [0, 1)`. The wet disc's radius breathes periodically; the
//! moving shoreline is where the a-posteriori limiter in an ADER-DG scheme
//! fires, which is exactly the cost heterogeneity the cost model in
//! [`crate::scenario`] charges for.

/// The analytic oscillating-lake state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillatingLake {
    /// Still-water depth at the bowl center.
    pub h0: f64,
    /// Bowl radius (shoreline radius of the lake at rest).
    pub a: f64,
    /// Oscillation amplitude `A ∈ [0, 1)`.
    pub amplitude: f64,
    /// Gravity.
    pub g: f64,
    /// Bowl center in domain coordinates.
    pub center: [f64; 2],
}

impl Default for OscillatingLake {
    fn default() -> Self {
        Self {
            h0: 0.1,
            a: 0.25,
            amplitude: 0.5,
            g: 9.81,
            // Deliberately off-center: the Sierpinski curve's node spans are
            // symmetric around the domain center, so a centered lake loads
            // every node identically and no imbalance arises.
            center: [0.4, 0.35],
        }
    }
}

impl OscillatingLake {
    /// Angular frequency `ω = √(8·g·h₀)/a`.
    pub fn omega(&self) -> f64 {
        (8.0 * self.g * self.h0).sqrt() / self.a
    }

    /// Oscillation period.
    pub fn period(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.omega()
    }

    /// Water depth at `(x, y)` and time `t` (0 where dry).
    pub fn depth(&self, x: f64, y: f64, t: f64) -> f64 {
        let a2 = self.amplitude * self.amplitude;
        let f = 1.0 - self.amplitude * (self.omega() * t).cos();
        let r2 = (x - self.center[0]).powi(2) + (y - self.center[1]).powi(2);
        let h = self.h0 * ((1.0 - a2).sqrt() / f - (r2 / (self.a * self.a)) * (1.0 - a2) / (f * f));
        h.max(0.0)
    }

    /// Whether `(x, y)` is wet at time `t`.
    pub fn is_wet(&self, x: f64, y: f64, t: f64) -> bool {
        self.depth(x, y, t) > 0.0
    }

    /// Current wet radius: `R_w(t)² = a²·f(t)/√(1−A²)`.
    pub fn wet_radius(&self, t: f64) -> f64 {
        let f = 1.0 - self.amplitude * (self.omega() * t).cos();
        (self.a * self.a * f / (1.0 - self.amplitude * self.amplitude).sqrt()).sqrt()
    }

    /// Whether `(x, y)` lies in the shoreline band at time `t`: wet but with
    /// depth below `band` (the "troubled cell" criterion for the limiter),
    /// or dry but within the band of the shoreline radius.
    pub fn near_shoreline(&self, x: f64, y: f64, t: f64, band: f64) -> bool {
        let d = self.depth(x, y, t);
        if d > 0.0 {
            d < band
        } else {
            let r = ((x - self.center[0]).powi(2) + (y - self.center[1]).powi(2)).sqrt();
            (r - self.wet_radius(t)).abs() < band * 4.0
        }
    }

    /// Total water volume by quadrature over a grid (for conservation
    /// tests); the analytic value is `π·h₀·a²/2`, independent of `t`.
    pub fn volume_quadrature(&self, t: f64, cells_per_side: usize) -> f64 {
        let h = 1.0 / cells_per_side as f64;
        let mut vol = 0.0;
        for i in 0..cells_per_side {
            for j in 0..cells_per_side {
                let x = (i as f64 + 0.5) * h;
                let y = (j as f64 + 0.5) * h;
                vol += self.depth(x, y, t) * h * h;
            }
        }
        vol
    }

    /// The exact total volume `π·h₀·a²/2`.
    pub fn exact_volume(&self) -> f64 {
        std::f64::consts::PI * self.h0 * self.a * self.a / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_state_when_amplitude_zero() {
        let lake = OscillatingLake {
            amplitude: 0.0,
            ..Default::default()
        };
        // h(r) = h0(1 − r²/a²) at any time.
        let [cx, cy] = lake.center;
        for t in [0.0, 1.0, 10.0] {
            assert!((lake.depth(cx, cy, t) - lake.h0).abs() < 1e-12);
            assert!((lake.depth(cx + lake.a, cy, t)).abs() < 1e-12);
            let half = lake.depth(cx + lake.a / 2.0_f64.sqrt(), cy, t);
            assert!((half - lake.h0 / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn center_always_wet_far_corner_always_dry() {
        let lake = OscillatingLake::default();
        let period = lake.period();
        let [cx, cy] = lake.center;
        for step in 0..20 {
            let t = period * step as f64 / 20.0;
            assert!(lake.is_wet(cx, cy, t), "center dry at t = {t}");
            assert!(!lake.is_wet(0.98, 0.98, t), "corner wet at t = {t}");
        }
    }

    #[test]
    fn wet_radius_breathes_periodically() {
        let lake = OscillatingLake::default();
        let p = lake.period();
        let r0 = lake.wet_radius(0.0);
        let r_half = lake.wet_radius(p / 2.0);
        let r_full = lake.wet_radius(p);
        assert!(r_half > r0, "lake expands after the contracted phase");
        assert!((r_full - r0).abs() < 1e-9, "period closes the cycle");
    }

    #[test]
    fn depth_boundary_matches_wet_radius() {
        let lake = OscillatingLake::default();
        let [cx, cy] = lake.center;
        for t in [0.0, 0.3, 1.7] {
            let rw = lake.wet_radius(t);
            assert!(lake.depth(cx + rw * 0.99, cy, t) > 0.0);
            assert!(lake.depth(cx + rw * 1.01, cy, t) == 0.0);
        }
    }

    #[test]
    fn volume_is_conserved() {
        let lake = OscillatingLake::default();
        let exact = lake.exact_volume();
        let p = lake.period();
        for step in 0..5 {
            let t = p * step as f64 / 5.0;
            let vol = lake.volume_quadrature(t, 400);
            assert!(
                (vol - exact).abs() / exact < 0.01,
                "volume drift at t = {t}: {vol} vs {exact}"
            );
        }
    }

    #[test]
    fn shoreline_band_is_a_thin_annulus() {
        let lake = OscillatingLake::default();
        let t = 0.25 * lake.period();
        let rw = lake.wet_radius(t);
        let [cx, cy] = lake.center;
        // Just inside the shoreline: troubled.
        assert!(lake.near_shoreline(cx + rw - 1e-3, cy, t, 0.01));
        // Deep center: not troubled.
        assert!(!lake.near_shoreline(cx, cy, t, 0.01));
        // Far outside: not troubled.
        assert!(!lake.near_shoreline(0.95, 0.95, t, 0.01));
    }
}
