//! Sectioning along the space-filling curve.

use std::ops::Range;

/// Splits `num_cells` SFC-ordered cells into `num_sections` contiguous
/// ranges of (nearly) equal *cell count* — the uniform cost model that the
/// paper deliberately assumes to be wrong, creating the imbalance the
/// rebalancers must fix. The first `num_cells % num_sections` sections get
/// one extra cell.
///
/// # Panics
/// Panics if `num_sections == 0` or there are fewer cells than sections.
pub fn split_even(num_cells: usize, num_sections: usize) -> Vec<Range<usize>> {
    assert!(num_sections >= 1, "need at least one section");
    assert!(
        num_cells >= num_sections,
        "cannot split {num_cells} cells into {num_sections} non-empty sections"
    );
    let base = num_cells / num_sections;
    let extra = num_cells % num_sections;
    let mut ranges = Vec::with_capacity(num_sections);
    let mut start = 0;
    for s in 0..num_sections {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, num_cells);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_division() {
        let r = split_even(12, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..9, 9..12]);
    }

    #[test]
    fn remainder_spreads_to_leading_sections() {
        let r = split_even(10, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn one_cell_per_section() {
        let r = split_even(3, 3);
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn too_many_sections_panics() {
        split_even(2, 3);
    }

    proptest! {
        #[test]
        fn partition_is_exact_and_balanced(
            cells in 1usize..10_000,
            sections in 1usize..100,
        ) {
            prop_assume!(cells >= sections);
            let ranges = split_even(cells, sections);
            prop_assert_eq!(ranges.len(), sections);
            // Contiguous cover.
            prop_assert_eq!(ranges[0].start, 0);
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            prop_assert_eq!(ranges.last().unwrap().end, cells);
            // Counts differ by at most one.
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            prop_assert!(mx - mn <= 1);
        }
    }
}
