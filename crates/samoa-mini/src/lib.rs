#![forbid(unsafe_code)]
//! # samoa-mini — an AMR shallow-water mini-app standing in for sam(oa)²
//!
//! The paper's realistic workload is sam(oa)², an adaptive-mesh-refinement
//! framework solving 2D shallow-water equations on tree-structured
//! triangular meshes whose cells are contiguous along a Sierpinski
//! space-filling curve; mesh sections (contiguous SFC ranges) are the
//! migratable tasks, and an ADER-DG scheme with a-posteriori finite-volume
//! limiting makes per-cell cost vary (troubled cells near the wet/dry front
//! are recomputed). Load imbalance arises because the runtime partitions
//! sections with an *incorrect* (uniform-cost) model.
//!
//! This crate rebuilds that pipeline at mini-app scale, from scratch:
//!
//! * [`mesh`] — newest-vertex-bisection triangular refinement of the unit
//!   square; depth-first leaf order **is** the Sierpinski traversal order.
//! * [`swe`] — Thacker's exact oscillating-lake solution of the
//!   shallow-water equations in a parabolic bowl (the very scenario the
//!   paper simulates), giving analytic wet/dry state at any time.
//! * [`scenario`] — the cost model (dry cells cheap, wet cells pay the
//!   DG update, shoreline cells pay the limiter recompute), equal-cell-count
//!   sectioning (the wrong cost model), and extraction of LRP
//!   [`qlrb_core::Instance`]s — including the paper's pinned Table V
//!   configuration (32 nodes × 208 tasks, baseline `R_imb = 4.1994`).
//! * [`sfc`] — section range splitting along the space-filling curve.

pub mod fv;
pub mod mesh;
pub mod scenario;
pub mod sfc;
pub mod swe;
pub mod tsunami;

pub use fv::FvSolver;
pub use mesh::{Mesh, Triangle};
pub use scenario::{CostModel, LakeScenario};
pub use swe::OscillatingLake;
pub use tsunami::TsunamiScenario;
