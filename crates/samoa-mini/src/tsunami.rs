//! A tsunami scenario: sam(oa)²'s namesake use case.
//!
//! The paper's experiments run the oscillating lake, but sam(oa)² is first
//! a *tsunami* code (ADER-DG + finite-volume limiting over adaptive
//! meshes). This module provides the matching workload: a radially
//! propagating wave from a Gaussian free-surface displacement (the
//! earthquake) over a sloping-beach bathymetry, integrated by the real
//! [`crate::fv::FvSolver`]. Load imbalance comes from the expanding ring of
//! *troubled* cells (steep fronts + the moving inundation line) sweeping
//! across the section decomposition as the wave travels — a transient,
//! harder-to-predict cost pattern than the periodic lake.

use qlrb_core::Instance;

use crate::fv::FvSolver;
use crate::mesh::Mesh;
use crate::scenario::CostModel;
use crate::sfc::split_even;

/// Tsunami workload configuration.
#[derive(Debug, Clone)]
pub struct TsunamiScenario {
    /// Compute nodes (`M`).
    pub nodes: usize,
    /// Sections (= tasks) per node (`n`).
    pub sections_per_node: usize,
    /// Mesh refinement depth for the section decomposition.
    pub d_min: u32,
    /// FV grid resolution per side.
    pub grid: usize,
    /// Still-water depth of the open ocean (left of the beach).
    pub ocean_depth: f64,
    /// Epicenter of the initial hump.
    pub epicenter: [f64; 2],
    /// Initial hump amplitude and width.
    pub amplitude: f64,
    /// Gaussian width of the hump.
    pub width: f64,
    /// Time at which loads are sampled (wave mid-flight).
    pub time: f64,
    /// Cost model (troubled cells pay the limiter).
    pub cost: CostModel,
}

impl Default for TsunamiScenario {
    fn default() -> Self {
        Self {
            nodes: 8,
            sections_per_node: 16,
            d_min: 10,
            grid: 96,
            ocean_depth: 0.2,
            epicenter: [0.3, 0.45],
            amplitude: 0.08,
            width: 0.06,
            time: 0.12,
            cost: CostModel {
                dry: 0.02,
                wet: 1.0,
                limiter_factor: 5.0,
                trouble_band: 0.01,
            },
        }
    }
}

impl TsunamiScenario {
    /// Builds the initial-condition solver: still ocean over a sloping
    /// beach (`z_b` rises linearly with `x`, shoreline near `x ≈ 0.85`)
    /// plus the Gaussian hump at the epicenter.
    pub fn initial_state(&self) -> FvSolver {
        let lake = crate::swe::OscillatingLake {
            h0: self.ocean_depth,
            a: 10.0, // effectively flat bowl: we overwrite bathymetry below
            amplitude: 0.0,
            g: 9.81,
            center: [0.5, 0.5],
        };
        let mut fv = FvSolver::from_lake(&lake, self.grid, 0.0);
        let n = self.grid;
        let dx = 1.0 / n as f64;
        for j in 0..n {
            for i in 0..n {
                let x = (i as f64 + 0.5) * dx;
                let y = (j as f64 + 0.5) * dx;
                // Sloping beach: ocean floor −depth at x=0 rising above
                // water level past x ≈ 0.85.
                let zb = -self.ocean_depth + (x / 0.85) * self.ocean_depth * 1.2;
                let eta0 = {
                    let dx2 = (x - self.epicenter[0]).powi(2) + (y - self.epicenter[1]).powi(2);
                    self.amplitude * (-dx2 / (self.width * self.width)).exp()
                };
                let h = (eta0 - zb).max(0.0);
                fv.set_cell(i, j, zb, h);
            }
        }
        fv
    }

    /// Runs the wave to the sample time and returns the solver.
    pub fn propagate(&self) -> FvSolver {
        let mut fv = self.initial_state();
        fv.run_until(self.time, 0.4);
        fv
    }

    /// Per-section costs at the sample time: the Sierpinski mesh's cells
    /// are priced by the FV state (dry cheap, wet normal, troubled = near
    /// the front or the inundation line = limiter-expensive).
    pub fn section_costs(&self) -> Vec<f64> {
        let fv = self.propagate();
        let troubled = fv.troubled_cells(self.cost.trouble_band, 0.5);
        let n = fv.resolution();
        let mesh = Mesh::uniform(self.d_min);
        let cell_costs: Vec<f64> = mesh
            .leaves()
            .iter()
            .map(|tri| {
                let c = tri.centroid();
                let i = ((c[0] * n as f64) as usize).min(n - 1);
                let j = ((c[1] * n as f64) as usize).min(n - 1);
                let h = fv.depths()[j * n + i];
                if h <= 0.0 {
                    self.cost.dry
                } else if troubled[j * n + i] {
                    self.cost.wet * self.cost.limiter_factor
                } else {
                    self.cost.wet
                }
            })
            .collect();
        let sections = self.nodes * self.sections_per_node;
        split_even(cell_costs.len(), sections)
            .into_iter()
            .map(|r| cell_costs[r].iter().sum())
            .collect()
    }

    /// The LRP instance in the paper's uniform input model.
    pub fn to_instance(&self) -> Instance {
        let n = self.sections_per_node as u64;
        let costs = self.section_costs();
        let weights = costs
            .chunks(self.sections_per_node)
            .map(|chunk| chunk.iter().sum::<f64>() / n as f64)
            .collect();
        Instance::uniform(n, weights).expect("tsunami costs are valid weights") // qlrb-lint: allow(no-unwrap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_propagates_outward() {
        let scenario = TsunamiScenario::default();
        let fv0 = scenario.initial_state();
        let [ex, ey] = scenario.epicenter;
        // Initially: the hump raises the surface above the same-x still
        // water level (same bathymetry, far enough in y to be unperturbed).
        let still_same_x = fv0.depth_at(ex, 0.05);
        assert!(
            fv0.depth_at(ex, ey) > still_same_x + scenario.amplitude / 2.0,
            "hump missing: {} vs still {}",
            fv0.depth_at(ex, ey),
            still_same_x
        );
        let far0 = fv0.depth_at(0.45, 0.45);
        let fv = scenario.propagate();
        // Later: the hump has collapsed and a ring reached the probe
        // (gravity-wave speed ≈ √(g·h) ≈ 1.2, distance 0.15, t = 0.12).
        assert!(fv.depth_at(ex, ey) < fv0.depth_at(ex, ey));
        let far1 = fv.depth_at(0.45, 0.45);
        assert!(
            (far1 - far0).abs() > 1e-4,
            "the wave should have disturbed the far field: {far0} vs {far1}"
        );
    }

    #[test]
    fn beach_is_dry_ocean_is_wet() {
        let fv = TsunamiScenario::default().initial_state();
        assert!(fv.depth_at(0.1, 0.5) > 0.1, "open ocean");
        assert!(fv.depth_at(0.98, 0.5) == 0.0, "dry beach top");
    }

    #[test]
    fn instance_is_imbalanced_and_rebalanceable() {
        let scenario = TsunamiScenario::default();
        let inst = scenario.to_instance();
        assert_eq!(inst.num_procs(), 8);
        assert!(
            inst.stats().imbalance_ratio > 0.10,
            "the wave front concentrates cost: {}",
            inst.stats().imbalance_ratio
        );
        // The standard pipeline applies unchanged.
        let plan = qlrb_classical_greedy(&inst);
        assert!(inst.stats_after(&plan).imbalance_ratio < inst.stats().imbalance_ratio);

        fn qlrb_classical_greedy(inst: &Instance) -> qlrb_core::MigrationMatrix {
            // Local LPT re-implementation to avoid a dev-dependency cycle
            // with qlrb-classical: heaviest task to least-loaded partition.
            let mut loads = vec![0.0f64; inst.num_procs()];
            let mut mat = qlrb_core::MigrationMatrix::zeros(inst.num_procs());
            for (w, class) in inst.tasks_by_weight_desc() {
                let (p, _) = loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap();
                mat.add(p, class, 1);
                loads[p] += w;
            }
            mat
        }
    }

    #[test]
    fn mass_conserved_through_the_run() {
        let scenario = TsunamiScenario::default();
        let fv0 = scenario.initial_state();
        let v0 = fv0.volume();
        let fv = scenario.propagate();
        assert!(
            (fv.volume() - v0).abs() / v0 < 1e-12,
            "{} vs {}",
            fv.volume(),
            v0
        );
    }
}
