//! Newest-vertex-bisection triangular meshes with Sierpinski leaf order.
//!
//! The unit square is covered by two right isosceles triangles; refining a
//! triangle bisects it across its hypotenuse through the right-angle apex,
//! and the midpoint becomes the *newest vertex* (the children's apex). A
//! depth-first traversal that always visits the child sharing the previous
//! leaf's edge first enumerates the leaves along a Sierpinski curve — this
//! is exactly how sam(oa)² linearizes its cells.

/// One triangle: right-angle apex plus the two hypotenuse endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// The right-angle / newest vertex.
    pub apex: [f64; 2],
    /// First hypotenuse endpoint.
    pub a: [f64; 2],
    /// Second hypotenuse endpoint.
    pub b: [f64; 2],
    /// Refinement depth (root = 0).
    pub depth: u32,
}

fn mid(p: [f64; 2], q: [f64; 2]) -> [f64; 2] {
    [(p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0]
}

impl Triangle {
    /// Bisects across the hypotenuse: the midpoint becomes both children's
    /// apex. Child order (`a`-side first, `b`-side second) is what makes the
    /// DFS order a space-filling curve.
    pub fn children(&self) -> (Triangle, Triangle) {
        let m = mid(self.a, self.b);
        (
            Triangle {
                apex: m,
                a: self.a,
                b: self.apex,
                depth: self.depth + 1,
            },
            Triangle {
                apex: m,
                a: self.apex,
                b: self.b,
                depth: self.depth + 1,
            },
        )
    }

    /// Triangle centroid.
    pub fn centroid(&self) -> [f64; 2] {
        [
            (self.apex[0] + self.a[0] + self.b[0]) / 3.0,
            (self.apex[1] + self.a[1] + self.b[1]) / 3.0,
        ]
    }

    /// Unsigned area.
    pub fn area(&self) -> f64 {
        let (p, q, r) = (self.apex, self.a, self.b);
        0.5 * ((q[0] - p[0]) * (r[1] - p[1]) - (r[0] - p[0]) * (q[1] - p[1])).abs()
    }

    /// Whether two triangles share at least one vertex (used to check the
    /// locality of the Sierpinski order).
    pub fn touches(&self, other: &Triangle) -> bool {
        let mine = [self.apex, self.a, self.b];
        let theirs = [other.apex, other.a, other.b];
        mine.iter().any(|p| {
            theirs
                .iter()
                .any(|q| (p[0] - q[0]).abs() < 1e-12 && (p[1] - q[1]).abs() < 1e-12)
        })
    }
}

/// An adaptively refined mesh: the leaves of the bisection tree, in
/// Sierpinski (depth-first) order.
#[derive(Debug, Clone)]
pub struct Mesh {
    leaves: Vec<Triangle>,
}

impl Mesh {
    /// Builds a mesh over the unit square. Every cell is refined to at least
    /// `d_min`; cells for which `indicator(centroid)` holds are refined
    /// further, up to `d_max`.
    ///
    /// # Panics
    /// Panics if `d_max < d_min`.
    pub fn adaptive(d_min: u32, d_max: u32, indicator: impl Fn([f64; 2]) -> bool) -> Self {
        assert!(d_max >= d_min, "d_max must be >= d_min");
        // Two root triangles along the square's main diagonal, oriented so
        // the DFS order is continuous across the diagonal.
        let roots = [
            Triangle {
                apex: [0.0, 0.0],
                a: [0.0, 1.0],
                b: [1.0, 0.0],
                depth: 0,
            },
            Triangle {
                apex: [1.0, 1.0],
                a: [1.0, 0.0],
                b: [0.0, 1.0],
                depth: 0,
            },
        ];
        let mut leaves = Vec::new();
        for root in roots {
            let mut stack = vec![root];
            while let Some(t) = stack.pop() {
                // A cell is refined if the indicator fires anywhere we can
                // cheaply probe it — centroid or any vertex — so coarse
                // cells overlapping the region cannot slip through.
                let hit = || {
                    indicator(t.centroid()) || indicator(t.apex) || indicator(t.a) || indicator(t.b)
                };
                let refine = t.depth < d_min || (t.depth < d_max && hit());
                if refine {
                    let (c1, c2) = t.children();
                    // Push second child first so the stack pops `a`-side
                    // (curve-continuous) first.
                    stack.push(c2);
                    stack.push(c1);
                } else {
                    leaves.push(t);
                }
            }
        }
        Self { leaves }
    }

    /// A uniformly refined mesh of depth `d` (`2^(d+1)` cells).
    pub fn uniform(d: u32) -> Self {
        Self::adaptive(d, d, |_| false)
    }

    /// The leaf triangles in Sierpinski order.
    pub fn leaves(&self) -> &[Triangle] {
        &self.leaves
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.leaves.len()
    }

    /// Total mesh area (should be 1 for the unit square).
    pub fn total_area(&self) -> f64 {
        self.leaves.iter().map(Triangle::area).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts_and_area() {
        for d in 0..8 {
            let mesh = Mesh::uniform(d);
            assert_eq!(mesh.num_cells(), 2usize << d, "depth {d}");
            assert!((mesh.total_area() - 1.0).abs() < 1e-12, "depth {d}");
            assert!(mesh.leaves().iter().all(|t| t.depth == d));
        }
    }

    #[test]
    fn adaptive_refines_only_where_indicated() {
        // Refine near the center point.
        let mesh = Mesh::adaptive(3, 6, |c| {
            let (dx, dy) = (c[0] - 0.5, c[1] - 0.5);
            (dx * dx + dy * dy).sqrt() < 0.15
        });
        assert!((mesh.total_area() - 1.0).abs() < 1e-12);
        let depths: Vec<u32> = mesh.leaves().iter().map(|t| t.depth).collect();
        assert!(depths.iter().any(|&d| d > 3), "some refinement happened");
        assert!(depths.iter().all(|&d| (3..=6).contains(&d)));
        // Deep cells cluster near the center.
        for t in mesh.leaves().iter().filter(|t| t.depth == 6) {
            let c = t.centroid();
            let r = ((c[0] - 0.5).powi(2) + (c[1] - 0.5).powi(2)).sqrt();
            assert!(r < 0.3, "deep cell far from indicator region: r = {r}");
        }
    }

    #[test]
    fn sierpinski_order_is_local() {
        // Consecutive leaves along the curve always share a vertex.
        let mesh = Mesh::uniform(6);
        for pair in mesh.leaves().windows(2) {
            assert!(
                pair[0].touches(&pair[1]),
                "consecutive leaves disconnected: {:?} / {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn adaptive_order_is_local_too() {
        let mesh = Mesh::adaptive(4, 7, |c| c[0] < 0.3);
        for pair in mesh.leaves().windows(2) {
            assert!(pair[0].touches(&pair[1]));
        }
    }

    #[test]
    fn children_partition_parent() {
        let t = Triangle {
            apex: [0.0, 0.0],
            a: [0.0, 1.0],
            b: [1.0, 0.0],
            depth: 0,
        };
        let (c1, c2) = t.children();
        assert!((c1.area() + c2.area() - t.area()).abs() < 1e-12);
        assert_eq!(c1.depth, 1);
        // Both children's apex is the hypotenuse midpoint.
        assert_eq!(c1.apex, [0.5, 0.5]);
        assert_eq!(c2.apex, [0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "d_max")]
    fn bad_depth_bounds_panic() {
        Mesh::adaptive(5, 3, |_| false);
    }
}
