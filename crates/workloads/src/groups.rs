//! Deterministic generators for the paper's three MxM experiment groups.
//!
//! In every group a node's tasks share one matrix size, drawn from the
//! paper's range `{128, 192, 256, …, 512}` (step 64); per-task load follows
//! the cubic [`crate::mxm::load_model`]. Each generator returns labelled
//! [`Instance`]s ready for the rebalancing methods.

use qlrb_core::Instance;

use crate::mxm::load_model;

/// The matrix sizes the paper sweeps (§V-B: "in the range {128, 192, 256,
/// …, 512}").
pub const MXM_SIZES: [u32; 7] = [128, 192, 256, 320, 384, 448, 512];

fn instance_from_sizes(n: u64, sizes: &[u32]) -> Instance {
    let weights = sizes.iter().map(|&s| load_model(s)).collect();
    Instance::uniform(n, weights).expect("generator parameters are valid") // qlrb-lint: allow(no-unwrap)
}

/// Group 1 (Fig. 3 / Table II): five imbalance levels on 8 nodes × 50
/// tasks. `Imb.0` is perfectly balanced; the spread of matrix sizes (and
/// with it `R_imb`) grows monotonically through `Imb.4`.
pub fn imbalance_levels() -> Vec<(String, Instance)> {
    let cases: [(&str, [u32; 8]); 5] = [
        ("Imb.0", [256; 8]),
        ("Imb.1", [256, 256, 256, 256, 256, 256, 320, 320]),
        ("Imb.2", [192, 192, 256, 256, 256, 320, 320, 384]),
        ("Imb.3", [128, 192, 256, 256, 320, 384, 448, 512]),
        ("Imb.4", [128, 128, 128, 128, 128, 128, 128, 512]),
    ];
    cases
        .iter()
        .map(|(label, sizes)| (label.to_string(), instance_from_sizes(50, sizes)))
        .collect()
}

/// Group 2 (Fig. 4 / Table III): node counts {4, 8, 16, 32, 64}, 100 tasks
/// per node, sizes assigned cyclically through [`MXM_SIZES`] so every scale
/// has a comparable mix of light and heavy nodes.
pub fn node_scaling() -> Vec<(usize, Instance)> {
    [4usize, 8, 16, 32, 64]
        .iter()
        .map(|&m| {
            let sizes: Vec<u32> = (0..m).map(|i| MXM_SIZES[i % MXM_SIZES.len()]).collect();
            (m, instance_from_sizes(100, &sizes))
        })
        .collect()
}

/// Beyond-paper node scaling for the decomposition frontend: node counts
/// {1024, 2048, 4096}, 100 tasks per node, the same cyclic size mix as
/// [`node_scaling`]. At these scales the monolithic `Q_CQM*` formulations
/// exceed the solver's variable cap (`Q_CQM1` at 4096 nodes is ≈ 1.2×10⁸
/// logical qubits), so only the multilevel frontend can solve them.
pub fn node_scaling_large() -> Vec<(usize, Instance)> {
    [1024usize, 2048, 4096]
        .iter()
        .map(|&m| {
            let sizes: Vec<u32> = (0..m).map(|i| MXM_SIZES[i % MXM_SIZES.len()]).collect();
            (m, instance_from_sizes(100, &sizes))
        })
        .collect()
}

/// Group 3 (Fig. 5 / Table IV): 8 nodes, tasks per node doubling from 8 to
/// 2048, the same cyclic size mix at every scale.
pub fn task_scaling() -> Vec<(u64, Instance)> {
    let sizes: Vec<u32> = (0..8).map(|i| MXM_SIZES[i % MXM_SIZES.len()]).collect();
    [8u64, 16, 32, 64, 128, 256, 512, 1024, 2048]
        .iter()
        .map(|&n| (n, instance_from_sizes(n, &sizes)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_levels_are_monotone() {
        let cases = imbalance_levels();
        assert_eq!(cases.len(), 5);
        assert_eq!(cases[0].1.stats().imbalance_ratio, 0.0, "Imb.0 balanced");
        let ratios: Vec<f64> = cases
            .iter()
            .map(|(_, i)| i.stats().imbalance_ratio)
            .collect();
        for w in ratios.windows(2) {
            assert!(w[0] < w[1], "imbalance must increase: {ratios:?}");
        }
        for (_, inst) in &cases {
            assert_eq!(inst.num_procs(), 8);
            assert_eq!(inst.tasks_per_proc(), 50);
        }
    }

    #[test]
    fn node_scaling_shapes() {
        let cases = node_scaling();
        let ms: Vec<usize> = cases.iter().map(|c| c.0).collect();
        assert_eq!(ms, vec![4, 8, 16, 32, 64]);
        for (m, inst) in &cases {
            assert_eq!(inst.num_procs(), *m);
            assert_eq!(inst.tasks_per_proc(), 100);
            assert!(
                inst.stats().imbalance_ratio > 0.0,
                "every scale is imbalanced"
            );
        }
    }

    #[test]
    fn node_scaling_large_shapes() {
        let cases = node_scaling_large();
        let ms: Vec<usize> = cases.iter().map(|c| c.0).collect();
        assert_eq!(ms, vec![1024, 2048, 4096]);
        for (m, inst) in &cases {
            assert_eq!(inst.num_procs(), *m);
            assert_eq!(inst.tasks_per_proc(), 100);
            assert!(inst.stats().imbalance_ratio > 0.0);
            // The whole point of the group: past the monolithic cap.
            let qubits =
                qlrb_core::cqm::logical_qubits(qlrb_core::Variant::Reduced, *m as u64, 100);
            assert!(qubits > 32_768, "{m} nodes must exceed the tabu cap");
        }
    }

    #[test]
    fn task_scaling_shapes() {
        let cases = task_scaling();
        assert_eq!(cases.len(), 9);
        for (n, inst) in &cases {
            assert_eq!(inst.tasks_per_proc(), *n);
            assert_eq!(inst.num_procs(), 8);
        }
        // R_imb is scale-free in n: identical mixes give identical ratios.
        let r0 = cases[0].1.stats().imbalance_ratio;
        for (_, inst) in &cases[1..] {
            assert!((inst.stats().imbalance_ratio - r0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_sizes_come_from_the_paper_range() {
        for (_, inst) in imbalance_levels() {
            for &w in inst.weights() {
                assert!(
                    MXM_SIZES.iter().any(|&s| (load_model(s) - w).abs() < 1e-12),
                    "weight {w} not from the size range"
                );
            }
        }
    }
}
