//! Seeded random instance generators for tests and fuzzing.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qlrb_core::Instance;

/// A uniformly random instance: `m` processes, `n` tasks each, per-process
/// weights drawn from `[w_min, w_max)`.
pub fn random_instance(seed: u64, m: usize, n: u64, w_min: f64, w_max: f64) -> Instance {
    assert!(m >= 1 && n >= 1 && w_min >= 0.0 && w_max > w_min);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights = (0..m).map(|_| rng.random_range(w_min..w_max)).collect();
    Instance::uniform(n, weights).expect("parameters validated above") // qlrb-lint: allow(no-unwrap)
}

/// A "hot spot" instance: all processes share the base weight except
/// `num_hot` of them, whose tasks are `factor`× heavier — the shape that
/// stresses migration budgets the hardest.
pub fn hotspot_instance(m: usize, n: u64, num_hot: usize, factor: f64) -> Instance {
    assert!(num_hot <= m && factor >= 1.0);
    let weights = (0..m)
        .map(|i| if i < num_hot { factor } else { 1.0 })
        .collect();
    Instance::uniform(n, weights).expect("parameters validated above") // qlrb-lint: allow(no-unwrap)
}

/// A heavy-tailed instance: per-process weights drawn lognormally
/// (`exp(σ·z)` with `z` standard normal), the shape empirical task-time
/// distributions in AMR codes tend toward — a few processes dominate.
pub fn lognormal_instance(seed: u64, m: usize, n: u64, sigma: f64) -> Instance {
    assert!(m >= 1 && n >= 1 && sigma >= 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights = (0..m)
        .map(|_| {
            // Box–Muller standard normal.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (sigma * z).exp()
        })
        .collect();
    Instance::uniform(n, weights).expect("lognormal weights are positive") // qlrb-lint: allow(no-unwrap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random_instance(9, 6, 20, 0.5, 5.0);
        let b = random_instance(9, 6, 20, 0.5, 5.0);
        assert_eq!(a, b);
        let c = random_instance(10, 6, 20, 0.5, 5.0);
        assert_ne!(a, c);
    }

    #[test]
    fn random_respects_bounds() {
        let inst = random_instance(1, 32, 5, 2.0, 3.0);
        for &w in inst.weights() {
            assert!((2.0..3.0).contains(&w));
        }
    }

    #[test]
    fn lognormal_is_heavy_tailed_and_deterministic() {
        let a = lognormal_instance(3, 64, 10, 1.0);
        let b = lognormal_instance(3, 64, 10, 1.0);
        assert_eq!(a, b);
        // σ = 0 degenerates to all-ones.
        let flat = lognormal_instance(3, 16, 10, 0.0);
        assert!(flat.weights().iter().all(|&w| (w - 1.0).abs() < 1e-12));
        // At σ = 1 the max/median ratio is substantial.
        let mut w: Vec<f64> = a.weights().to_vec();
        w.sort_by(f64::total_cmp);
        assert!(w[63] / w[32] > 2.0, "heavy tail expected: {:?}", &w[60..]);
    }

    #[test]
    fn hotspot_shape() {
        let inst = hotspot_instance(8, 10, 2, 16.0);
        assert_eq!(inst.weights()[0], 16.0);
        assert_eq!(inst.weights()[1], 16.0);
        assert_eq!(inst.weights()[2], 1.0);
        assert!(inst.stats().imbalance_ratio > 1.0);
    }
}
