//! The MxM compute kernel and its load model.
//!
//! One task is one `A = B × C` multiplication of square `size × size`
//! matrices (2·size³ flops). The experiments only need *relative* loads, so
//! the analytic model normalizes to the smallest size the paper uses
//! (128): `load(size) = (size/128)³`. [`calibrate`] runs the real kernel to
//! verify the cubic model on the current machine.

use std::time::Instant;

/// A dense square matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// A deterministic pseudo-random matrix (values in `[0, 1)`), seeded by
    /// position — no RNG state needed, fully reproducible.
    pub fn patterned(n: usize) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                // A simple LCG-style hash of the position.
                let h = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(j as u64)
                    .wrapping_mul(1442695040888963407);
                data.push((h >> 11) as f64 / (1u64 << 53) as f64);
            }
        }
        Self { n, data }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Naive triple-loop multiply (ikj order, so the inner loop streams).
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let n = self.n;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let (orow, brow) = (i * n, k * n);
                for j in 0..n {
                    out.data[orow + j] += a * rhs.data[brow + j];
                }
            }
        }
        out
    }

    /// Cache-blocked multiply (block size `b`).
    pub fn multiply_blocked(&self, rhs: &Matrix, b: usize) -> Matrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        assert!(b >= 1);
        let n = self.n;
        let mut out = Matrix::zeros(n);
        for ii in (0..n).step_by(b) {
            for kk in (0..n).step_by(b) {
                for jj in (0..n).step_by(b) {
                    for i in ii..(ii + b).min(n) {
                        for k in kk..(kk + b).min(n) {
                            let a = self.data[i * n + k];
                            for j in jj..(jj + b).min(n) {
                                out.data[i * n + j] += a * rhs.data[k * n + j];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm (used by tests to compare products cheaply).
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Analytic task-load model: `(size/128)³`, normalized so the smallest
/// matrix size the paper uses costs 1.0.
pub fn load_model(size: u32) -> f64 {
    let s = size as f64 / 128.0;
    s * s * s
}

/// One calibration sample: measured kernel time for a size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Matrix dimension.
    pub size: u32,
    /// Measured seconds for one multiply.
    pub seconds: f64,
    /// `seconds / load_model(size)` — constant if the cubic model holds.
    pub seconds_per_unit: f64,
}

/// Times the real kernel at each size. Used by the calibration example; the
/// experiment generators use [`load_model`] directly so they are
/// machine-independent and fast.
pub fn calibrate(sizes: &[u32]) -> Vec<CalibrationPoint> {
    sizes
        .iter()
        .map(|&size| {
            let a = Matrix::patterned(size as usize);
            let b = Matrix::patterned(size as usize);
            let started = Instant::now();
            let c = a.multiply_blocked(&b, 64);
            let seconds = started.elapsed().as_secs_f64().max(1e-12);
            std::hint::black_box(c.frobenius());
            CalibrationPoint {
                size,
                seconds,
                seconds_per_unit: seconds / load_model(size),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_identity() {
        let n = 8;
        let mut id = Matrix::zeros(n);
        for i in 0..n {
            id.set(i, i, 1.0);
        }
        let a = Matrix::patterned(n);
        let prod = a.multiply(&id);
        assert_eq!(prod, a);
    }

    #[test]
    fn blocked_matches_naive() {
        let a = Matrix::patterned(17); // deliberately not a multiple of block
        let b = Matrix::patterned(17);
        let naive = a.multiply(&b);
        for blk in [1, 4, 8, 16, 32] {
            let blocked = a.multiply_blocked(&b, blk);
            for i in 0..17 {
                for j in 0..17 {
                    assert!(
                        (naive.get(i, j) - blocked.get(i, j)).abs() < 1e-9,
                        "block {blk} mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn load_model_is_cubic_and_normalized() {
        assert_eq!(load_model(128), 1.0);
        assert_eq!(load_model(256), 8.0);
        assert_eq!(load_model(512), 64.0);
        assert!((load_model(192) - 3.375).abs() < 1e-12);
    }

    #[test]
    fn patterned_is_deterministic() {
        assert_eq!(Matrix::patterned(9), Matrix::patterned(9));
    }

    #[test]
    fn calibration_reports_positive_times() {
        let pts = calibrate(&[16, 32]);
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert!(p.seconds > 0.0);
            assert!(p.seconds_per_unit > 0.0);
        }
    }
}
