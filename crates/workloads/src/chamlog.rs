//! Chameleon-style execution logs.
//!
//! The paper's artifact extracts its LRP inputs from Chameleon run logs
//! (`experiments/*/cham_logs/`, parsed by `cham_log_parser.py`). This module
//! reproduces that pipeline: a writer that emits per-rank per-iteration
//! lines in a Chameleon-flavoured format, and a parser that recovers the
//! imbalance input ([`qlrb_core::Instance`]) from the *last* iteration —
//! which is exactly what the artifact's scripts do.
//!
//! Log line shape (one per rank per iteration):
//!
//! ```text
//! it=3 rank=2 ntasks=50 w=3.375000 load=168.750000
//! ```

use qlrb_core::{Instance, RebalanceError};

/// Serializes a synthetic Chameleon log: `iterations` BSP iterations of the
/// given instance (loads are stationary without rebalancing, as in the
/// paper's imbalance captures).
pub fn write_log(inst: &Instance, iterations: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# chameleon log: ranks={} tasks_per_rank={}",
        inst.num_procs(),
        inst.tasks_per_proc()
    );
    for it in 0..iterations.max(1) {
        for (rank, &w) in inst.weights().iter().enumerate() {
            let _ = writeln!(
                out,
                "it={it} rank={rank} ntasks={} w={:.6} load={:.6}",
                inst.tasks_per_proc(),
                w,
                w * inst.tasks_per_proc() as f64
            );
        }
    }
    out
}

/// Parses a log back into the last iteration's imbalance input.
///
/// Tolerant of comment lines (`#`) and blank lines; strict about field
/// structure, rank contiguity, and the `load = w·ntasks` cross-check.
pub fn parse_log(log: &str) -> Result<Instance, RebalanceError> {
    let mut last_it: Option<u64> = None;
    // (rank, ntasks, w) of the most recent iteration seen.
    let mut rows: Vec<(usize, u64, f64)> = Vec::new();
    for (lineno, line) in log.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = None;
        let mut rank = None;
        let mut ntasks = None;
        let mut w = None;
        let mut load = None;
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=').ok_or_else(|| {
                RebalanceError::Io(format!("line {}: malformed field '{field}'", lineno + 1))
            })?;
            let bad = |what: &str| {
                RebalanceError::Io(format!("line {}: bad {what} '{value}'", lineno + 1))
            };
            match key {
                "it" => it = Some(value.parse::<u64>().map_err(|_| bad("iteration"))?),
                "rank" => rank = Some(value.parse::<usize>().map_err(|_| bad("rank"))?),
                "ntasks" => ntasks = Some(value.parse::<u64>().map_err(|_| bad("ntasks"))?),
                "w" => w = Some(value.parse::<f64>().map_err(|_| bad("weight"))?),
                "load" => load = Some(value.parse::<f64>().map_err(|_| bad("load"))?),
                other => {
                    return Err(RebalanceError::Io(format!(
                        "line {}: unknown field '{other}'",
                        lineno + 1
                    )))
                }
            }
        }
        let (Some(it), Some(rank), Some(ntasks), Some(w), Some(load)) = (it, rank, ntasks, w, load)
        else {
            return Err(RebalanceError::Io(format!(
                "line {}: missing fields",
                lineno + 1
            )));
        };
        if (load - w * ntasks as f64).abs() > 1e-6 * (1.0 + load.abs()) {
            return Err(RebalanceError::Io(format!(
                "line {}: load {load} inconsistent with w*ntasks = {}",
                lineno + 1,
                w * ntasks as f64
            )));
        }
        if last_it != Some(it) {
            last_it = Some(it);
            rows.clear();
        }
        rows.push((rank, ntasks, w));
    }
    if rows.is_empty() {
        return Err(RebalanceError::Io("log contains no data lines".into()));
    }
    rows.sort_by_key(|&(rank, _, _)| rank);
    let n = rows[0].1;
    let mut weights = Vec::with_capacity(rows.len());
    for (expect, &(rank, ntasks, w)) in rows.iter().enumerate() {
        if rank != expect {
            return Err(RebalanceError::Io(format!(
                "rank {expect} missing or duplicated in the last iteration"
            )));
        }
        if ntasks != n {
            return Err(RebalanceError::Io(format!(
                "rank {rank} holds {ntasks} tasks; the LRP input model needs a uniform count ({n})"
            )));
        }
        weights.push(w);
    }
    Instance::uniform(n, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::uniform(50, vec![1.0, 3.375, 8.0, 15.625]).unwrap()
    }

    #[test]
    fn roundtrip_last_iteration() {
        let log = write_log(&inst(), 5);
        let back = parse_log(&log).unwrap();
        assert_eq!(back, inst());
    }

    #[test]
    fn parser_takes_the_last_iteration() {
        // First iteration balanced, last imbalanced.
        let balanced = Instance::uniform(50, vec![2.0; 4]).unwrap();
        let mut log = write_log(&balanced, 1);
        // Manually append a second iteration with different weights.
        let imb = inst();
        for (rank, &w) in imb.weights().iter().enumerate() {
            log.push_str(&format!(
                "it=1 rank={rank} ntasks=50 w={w:.6} load={:.6}\n",
                w * 50.0
            ));
        }
        let back = parse_log(&log).unwrap();
        assert_eq!(back, imb);
    }

    #[test]
    fn rejects_inconsistent_load() {
        let log = "it=0 rank=0 ntasks=10 w=2.0 load=999.0\n";
        assert!(parse_log(log)
            .unwrap_err()
            .to_string()
            .contains("inconsistent"));
    }

    #[test]
    fn rejects_missing_rank() {
        let log = "it=0 rank=0 ntasks=10 w=2.0 load=20.0\n\
                   it=0 rank=2 ntasks=10 w=3.0 load=30.0\n";
        assert!(parse_log(log).unwrap_err().to_string().contains("rank 1"));
    }

    #[test]
    fn rejects_nonuniform_counts() {
        let log = "it=0 rank=0 ntasks=10 w=2.0 load=20.0\n\
                   it=0 rank=1 ntasks=11 w=3.0 load=33.0\n";
        assert!(parse_log(log).unwrap_err().to_string().contains("uniform"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_log("").is_err());
        assert!(parse_log("# only comments\n").is_err());
        assert!(parse_log("it=0 rank=zero ntasks=1 w=1 load=1").is_err());
        assert!(parse_log("hello world").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let log = format!("# header\n\n{}", write_log(&inst(), 1));
        assert!(parse_log(&log).is_ok());
    }
}
