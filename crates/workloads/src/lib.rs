#![forbid(unsafe_code)]
//! # qlrb-workloads — the paper's MxM workload and experiment inputs
//!
//! The paper's synthetic benchmark decomposes a matrix multiplication into
//! per-task `A = B × C` kernels: a task's load is set by its matrix size,
//! and imbalance is created by giving different nodes different sizes
//! (uniform within a node). This crate provides
//!
//! * [`mxm`] — an actual matrix-multiply kernel (naive and cache-blocked)
//!   used to calibrate the load-vs-size model (`load ∝ size³`), plus the
//!   analytic model itself;
//! * [`groups`] — deterministic generators for the paper's three MxM
//!   experiment groups (§V-B): varying imbalance level, varying node count,
//!   varying tasks per node;
//! * [`synthetic`] — seeded random instance generators for tests and
//!   property-based fuzzing.

pub mod chamlog;
pub mod groups;
pub mod mxm;
pub mod synthetic;

pub use chamlog::{parse_log, write_log};
pub use groups::{imbalance_levels, node_scaling, node_scaling_large, task_scaling, MXM_SIZES};
pub use mxm::{load_model, Matrix};
