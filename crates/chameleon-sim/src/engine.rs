//! The discrete-event execution engine.

use qlrb_core::{Instance, MigrationMatrix, RebalanceError};

use crate::config::SimConfig;
use crate::report::{IterationReport, NodeReport, SimReport};
use crate::trace::{SpanKind, TraceSpan};

/// The resident tasks of one node (durations in load units).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeTasks {
    /// Task durations.
    pub durations: Vec<f64>,
}

/// One migrated task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// The task's load (also sizes the transfer).
    pub load: f64,
}

/// A complete simulation input: initial residency plus the migrations the
/// rebalancing plan prescribes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimInput {
    /// Per-node resident tasks *after* removing migrated-away tasks.
    pub nodes: Vec<NodeTasks>,
    /// Individual task migrations, executed at iteration-0 start.
    pub migrations: Vec<Migration>,
}

impl SimInput {
    /// Baseline input: the instance's initial assignment, no migrations.
    pub fn from_instance(inst: &Instance) -> Self {
        let n = inst.tasks_per_proc() as usize;
        Self {
            nodes: inst
                .weights()
                .iter()
                .map(|&w| NodeTasks {
                    durations: vec![w; n],
                })
                .collect(),
            migrations: Vec::new(),
        }
    }

    /// Input realizing a migration plan: node `i` keeps `x[i][i]` of its own
    /// tasks; every off-diagonal count becomes that many single-task
    /// migrations (from `j` to `i`, load `w_j`).
    ///
    /// # Errors
    /// Returns [`RebalanceError::InvalidPlan`] if the plan fails validation
    /// against the instance.
    #[allow(clippy::needless_range_loop)] // (i, j) jointly index the matrix and nodes
    pub fn from_plan(inst: &Instance, plan: &MigrationMatrix) -> Result<Self, RebalanceError> {
        plan.validate(inst)?;
        let m = inst.num_procs();
        let mut nodes = vec![NodeTasks::default(); m];
        let mut migrations = Vec::new();
        for i in 0..m {
            for j in 0..m {
                let count = plan.get(i, j) as usize;
                if i == j {
                    nodes[i]
                        .durations
                        .extend(std::iter::repeat_n(inst.weights()[i], count));
                } else {
                    migrations.extend(std::iter::repeat_n(
                        Migration {
                            from: j,
                            to: i,
                            load: inst.weights()[j],
                        },
                        count,
                    ));
                }
            }
        }
        Ok(Self { nodes, migrations })
    }
}

impl SimInput {
    /// Multiplies every task duration (resident and in-flight) by an
    /// independent noise factor `max(0.05, 1 + cv·z)` with `z` standard
    /// normal — the "incorrect cost model" of the paper's premise, made
    /// executable: plans were computed on the *expected* weights, the
    /// runtime sees the *actual* ones. Deterministic per seed.
    pub fn perturbed(mut self, seed: u64, cv: f64) -> Self {
        use rand::Rng;
        use rand::SeedableRng;
        assert!(cv >= 0.0, "coefficient of variation must be >= 0");
        if cv == 0.0 {
            return self;
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Box–Muller standard normal from two uniforms.
        let normal = |rng: &mut rand_chacha::ChaCha8Rng| -> f64 {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random::<f64>();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        for node in &mut self.nodes {
            for d in &mut node.durations {
                *d *= (1.0 + cv * normal(&mut rng)).max(0.05);
            }
        }
        for mig in &mut self.migrations {
            mig.load *= (1.0 + cv * normal(&mut rng)).max(0.05);
        }
        self
    }
}

/// Runs the BSP simulation.
///
/// Iteration 0 performs the migrations (sender and receiver communication
/// threads each busy for `latency + load·cost` per task, store-and-forward)
/// overlapped with the computation of already-resident tasks; subsequent
/// iterations rerun the post-migration residency with no communication.
#[allow(clippy::needless_range_loop)] // indexed loops here touch several parallel arrays
pub fn simulate(input: &SimInput, cfg: &SimConfig) -> SimReport {
    assert!(cfg.comp_threads >= 1, "need at least one compute thread");
    assert!(cfg.iterations >= 1, "need at least one iteration");
    let m = input.nodes.len();
    assert!(m >= 1, "need at least one node");

    let mut trace: Vec<TraceSpan> = Vec::new();

    // ---- Communication phase (iteration 0) -------------------------------
    // Sends are serialized per source comm thread in input order; receives
    // are serialized per destination comm thread in arrival order.
    let mut src_free = vec![0.0f64; m];
    let mut sends: Vec<(usize, f64, f64)> = Vec::new(); // (to, send_end, load)
    for mig in &input.migrations {
        let cost = cfg.transfer_cost(mig.load);
        let start = src_free[mig.from];
        let end = start + cost;
        src_free[mig.from] = end;
        trace.push(TraceSpan {
            node: mig.from,
            thread: usize::MAX,
            start,
            end,
            kind: SpanKind::Send,
        });
        sends.push((mig.to, end, mig.load));
    }
    // Receive in arrival order per destination.
    sends.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut dst_free = vec![0.0f64; m];
    let mut arrivals: Vec<Vec<(f64, f64)>> = vec![Vec::new(); m]; // (ready, load)
    for (to, send_end, load) in sends {
        let cost = cfg.transfer_cost(load);
        let start = send_end.max(dst_free[to]);
        let end = start + cost;
        dst_free[to] = end;
        trace.push(TraceSpan {
            node: to,
            thread: usize::MAX,
            start,
            end,
            kind: SpanKind::Recv,
        });
        arrivals[to].push((end, load));
    }

    // ---- Iterations -------------------------------------------------------
    let mut iterations: Vec<IterationReport> = Vec::with_capacity(cfg.iterations);
    let mut offset = 0.0f64; // global clock at iteration start
    for iter in 0..cfg.iterations {
        let mut finishes = vec![0.0f64; m];
        let mut busys = vec![0.0f64; m];
        let mut comm_busys = vec![0.0f64; m];
        for node in 0..m {
            // Ready list: resident tasks at the barrier, arrivals mid-flight
            // (iteration 0 only; afterwards everything is resident).
            let mut ready: Vec<(f64, f64)> = input.nodes[node]
                .durations
                .iter()
                .map(|&d| (0.0, d))
                .collect();
            if iter == 0 {
                ready.extend(arrivals[node].iter().copied());
                comm_busys[node] = src_free[node].max(dst_free[node]);
            } else {
                ready.extend(arrivals[node].iter().map(|&(_, d)| (0.0, d)));
            }
            ready.sort_by(|a, b| a.0.total_cmp(&b.0));

            // List scheduling onto `comp_threads` workers.
            let mut workers = vec![0.0f64; cfg.comp_threads];
            for &(r, d) in &ready {
                let Some((widx, &wfree)) = workers
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                else {
                    continue; // unreachable: comp_threads >= 1 asserted at entry
                };
                let start = wfree.max(r);
                let end = start + d;
                workers[widx] = end;
                busys[node] += d;
                if iter == 0 {
                    trace.push(TraceSpan {
                        node,
                        thread: widx,
                        start: offset + start,
                        end: offset + end,
                        kind: SpanKind::Compute,
                    });
                }
            }
            let compute_finish = workers.iter().copied().fold(0.0f64, f64::max);
            let comm_finish = if iter == 0 { comm_busys[node] } else { 0.0 };
            finishes[node] = compute_finish.max(comm_finish);
        }
        let makespan = finishes.iter().copied().fold(0.0f64, f64::max);
        let nodes = (0..m)
            .map(|i| NodeReport {
                finish: finishes[i],
                wait: makespan - finishes[i],
                busy: busys[i],
                comm_busy: comm_busys[i],
                utilization: if makespan > 0.0 {
                    busys[i] / (makespan * cfg.comp_threads as f64)
                } else {
                    0.0
                },
            })
            .collect();
        if iter == 0 {
            for i in 0..m {
                if makespan > finishes[i] {
                    trace.push(TraceSpan {
                        node: i,
                        thread: 0,
                        start: offset + finishes[i],
                        end: offset + makespan,
                        kind: SpanKind::Wait,
                    });
                }
            }
        }
        iterations.push(IterationReport { makespan, nodes });
        offset += makespan;
    }

    SimReport {
        total_makespan: iterations.iter().map(|i| i.makespan).sum(),
        iterations,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::uniform(5, vec![1.87, 1.97, 3.12, 2.81]).unwrap()
    }

    #[test]
    fn analytic_config_reproduces_instance_loads() {
        let inst = inst();
        let input = SimInput::from_instance(&inst);
        let report = simulate(&input, &SimConfig::analytic());
        let loads = inst.loads();
        let it = &report.iterations[0];
        assert!((it.makespan - inst.stats().l_max).abs() < 1e-9);
        for (node, load) in it.nodes.iter().zip(loads) {
            assert!((node.finish - load).abs() < 1e-9);
            assert!((node.wait - (it.makespan - load)).abs() < 1e-9);
        }
    }

    #[test]
    fn migration_changes_makespan_to_balanced_value() {
        let inst = Instance::uniform(4, vec![1.0, 3.0]).unwrap();
        // Move one heavy task from node 1 to node 0: loads 4+3=7 vs 9.
        let mut plan = MigrationMatrix::identity(&inst);
        plan.migrate(1, 0, 1).unwrap();
        let input = SimInput::from_plan(&inst, &plan).unwrap();
        let report = simulate(&input, &SimConfig::analytic());
        // Node 0: 4 resident (ready 0) + one arrived task (ready 0 with free
        // comm) = 7; node 1: 9.
        assert!((report.iterations[0].makespan - 9.0).abs() < 1e-9);
        assert!((report.iterations[0].nodes[0].finish - 7.0).abs() < 1e-9);
    }

    #[test]
    fn communication_cost_delays_migrated_tasks() {
        let inst = Instance::uniform(1, vec![0.0, 10.0]).unwrap();
        let mut plan = MigrationMatrix::identity(&inst);
        plan.migrate(1, 0, 1).unwrap();
        let input = SimInput::from_plan(&inst, &plan).unwrap();
        let cfg = SimConfig {
            comp_threads: 1,
            comm_latency: 1.0,
            comm_cost_per_load: 0.1,
            iterations: 2,
        };
        let report = simulate(&input, &cfg);
        // Transfer = 1 + 1 = 2 at sender, then 2 at receiver: ready at 4;
        // execution 10 → node 0 finishes at 14 in iteration 0.
        assert!((report.iterations[0].makespan - 14.0).abs() < 1e-9);
        // Iteration 1 has no communication: plain 10.
        assert!((report.iterations[1].makespan - 10.0).abs() < 1e-9);
        assert!((report.total_makespan - 24.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_workers_run_in_parallel() {
        let inst = Instance::uniform(4, vec![2.0]).unwrap();
        let input = SimInput::from_instance(&inst);
        let cfg = SimConfig {
            comp_threads: 2,
            iterations: 1,
            ..SimConfig::analytic()
        };
        let report = simulate(&input, &cfg);
        // 4 tasks of 2.0 on 2 workers → makespan 4, busy 8, utilization 1.
        assert!((report.iterations[0].makespan - 4.0).abs() < 1e-9);
        assert!((report.iterations[0].nodes[0].utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sender_serializes_transfers() {
        let inst = Instance::uniform(3, vec![10.0, 0.0, 0.0]).unwrap();
        let mut plan = MigrationMatrix::identity(&inst);
        plan.migrate(0, 1, 1).unwrap();
        plan.migrate(0, 2, 1).unwrap();
        let input = SimInput::from_plan(&inst, &plan).unwrap();
        let cfg = SimConfig {
            comp_threads: 1,
            comm_latency: 1.0,
            comm_cost_per_load: 0.0,
            iterations: 1,
        };
        let report = simulate(&input, &cfg);
        // Two sends from node 0 serialize on its comm thread: busy until 2.
        assert!((report.iterations[0].nodes[0].comm_busy - 2.0).abs() < 1e-9);
        // Second receiver gets its task at 2+1 = 3, runs 10 → finish 13...
        // receivers are ordered by arrival; one of nodes 1/2 finishes at 12,
        // the other at 13.
        let mut f: Vec<f64> = report.iterations[0].nodes[1..]
            .iter()
            .map(|n| n.finish)
            .collect();
        f.sort_by(f64::total_cmp);
        assert!((f[0] - 12.0).abs() < 1e-9);
        assert!((f[1] - 13.0).abs() < 1e-9);
    }

    #[test]
    fn trace_covers_all_busy_time() {
        let inst = inst();
        let input = SimInput::from_instance(&inst);
        let report = simulate(&input, &SimConfig::analytic());
        let computed: f64 = report
            .trace
            .iter()
            .filter(|s| s.kind == SpanKind::Compute)
            .map(|s| s.duration())
            .sum();
        let total_load: f64 = inst.loads().iter().sum();
        assert!((computed - total_load).abs() < 1e-9);
    }

    #[test]
    fn perturbation_is_deterministic_and_mass_shifting() {
        let inst = Instance::uniform(20, vec![1.0, 2.0, 3.0]).unwrap();
        let base = SimInput::from_instance(&inst);
        let a = base.clone().perturbed(7, 0.3);
        let b = base.clone().perturbed(7, 0.3);
        assert_eq!(a, b, "same seed, same noise");
        let c = base.clone().perturbed(8, 0.3);
        assert_ne!(a, c, "different seed, different noise");
        // Zero noise is the identity.
        assert_eq!(base.clone().perturbed(9, 0.0), base);
        // Durations stay positive.
        let wild = base.perturbed(1, 2.0);
        assert!(wild
            .nodes
            .iter()
            .flat_map(|n| &n.durations)
            .all(|&d| d > 0.0));
    }

    #[test]
    fn from_plan_rejects_invalid_plan() {
        let inst = inst();
        let bad = MigrationMatrix::zeros(4);
        let err = SimInput::from_plan(&inst, &bad).unwrap_err();
        assert!(matches!(err, RebalanceError::InvalidPlan(_)), "{err}");
    }
}
