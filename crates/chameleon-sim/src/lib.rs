#![forbid(unsafe_code)]
//! # chameleon-sim — a Chameleon-style BSP task runtime, simulated
//!
//! The paper executes its workloads with Chameleon, an MPI+OpenMP library
//! for reactive task migration in bulk-synchronous (BSP) applications: each
//! node runs one MPI process with several compute threads plus one
//! dedicated communication thread, and task migration overlaps with
//! computation (paper Fig. 2). No MPI cluster exists here, so this crate is
//! a faithful discrete-event model of that execution:
//!
//! * a node = `comp_threads` workers + 1 communication thread;
//! * an iteration = migrate (per the plan) → compute → barrier;
//! * a migrated task occupies the sender's and receiver's comm threads for
//!   `latency + load·cost_per_load` each and only becomes runnable on the
//!   destination after transfer — so migration overhead and
//!   computation/communication overlap are first-class, not post-hoc
//!   corrections;
//! * workers run ready tasks via list scheduling (earliest-free worker).
//!
//! Outputs are per-iteration makespans, per-node finish/wait times and
//! utilization, plus a span trace renderable as an ASCII Gantt chart (the
//! paper's Fig. 1 illustration). Comparing a baseline run against a
//! rebalanced run measures *achieved* speedup including migration cost —
//! complementing the analytic `L_max` ratio the paper reports.

pub mod config;
pub mod engine;
pub mod report;
pub mod stealing;
pub mod trace;

pub use config::SimConfig;
pub use engine::{simulate, NodeTasks, SimInput};
pub use report::{IterationReport, NodeReport, SimReport};
pub use stealing::{simulate_work_stealing, steal_from_instance, StealReport};
pub use trace::{render_gantt, SpanKind, TraceSpan};
