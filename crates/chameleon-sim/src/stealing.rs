//! Work stealing — the classic *dynamic* load-balancing baseline.
//!
//! The paper's related work (§III) contrasts upfront rebalancing with work
//! stealing (Blumofe & Leiserson), where idle workers pull tasks from busy
//! nodes at runtime, paying a per-steal communication delay that HPC
//! interconnects make non-trivial. This module simulates one BSP iteration
//! under work stealing so the trade-off is measurable against the paper's
//! migrate-then-run methods: stealing needs no prediction, but each stolen
//! task costs `steal_cost(load)` in latency, and late steals can't be
//! amortized.

use qlrb_core::Instance;

use crate::config::SimConfig;

/// Outcome of a work-stealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct StealReport {
    /// Iteration makespan.
    pub makespan: f64,
    /// Number of successful steals.
    pub steals: u64,
    /// Per-node executed load (own + stolen work).
    pub executed: Vec<f64>,
}

/// Simulates one BSP iteration with work stealing.
///
/// Each node runs `cfg.comp_threads` workers over its local FIFO queue.
/// A worker whose local queue is empty steals the *tail* task of the node
/// with the largest remaining queue; the stolen task only starts after
/// `cfg.transfer_cost(load)` (the victim's data must travel). With
/// `enabled = false` this degrades to static per-node execution — the
/// baseline the paper's `L_max` metric models.
pub fn simulate_work_stealing(nodes: &[Vec<f64>], cfg: &SimConfig, enabled: bool) -> StealReport {
    let m = nodes.len();
    assert!(m >= 1, "need at least one node");
    assert!(cfg.comp_threads >= 1);
    // Local queues (FIFO at the head; thieves take from the tail).
    let mut queues: Vec<std::collections::VecDeque<f64>> =
        nodes.iter().map(|t| t.iter().copied().collect()).collect();
    let mut executed = vec![0.0f64; m];
    let mut steals = 0u64;

    // All workers become free at t = 0; a min-heap orders wake-ups.
    use std::cmp::Reverse;
    #[derive(PartialEq)]
    struct Free(f64, usize); // (time, worker id); node = id / comp_threads
    impl Eq for Free {}
    impl PartialOrd for Free {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Free {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut heap: std::collections::BinaryHeap<Reverse<Free>> = (0..m * cfg.comp_threads)
        .map(|w| Reverse(Free(0.0, w)))
        .collect();

    let mut makespan = 0.0f64;
    while let Some(Reverse(Free(t, w))) = heap.pop() {
        let node = w / cfg.comp_threads;
        if let Some(dur) = queues[node].pop_front() {
            executed[node] += dur;
            let end = t + dur;
            makespan = makespan.max(end);
            heap.push(Reverse(Free(end, w)));
            continue;
        }
        if !enabled {
            continue; // static mode: idle once local work is done
        }
        // Steal from the victim with the largest remaining queue.
        let victim = (0..m)
            .max_by_key(|&v| queues[v].len())
            .filter(|&v| !queues[v].is_empty());
        let Some(v) = victim else { continue };
        let dur = queues[v].pop_back().expect("non-empty by selection"); // qlrb-lint: allow(no-unwrap)
        steals += 1;
        executed[node] += dur;
        let end = t + cfg.transfer_cost(dur) + dur;
        makespan = makespan.max(end);
        heap.push(Reverse(Free(end, w)));
    }

    StealReport {
        makespan,
        steals,
        executed,
    }
}

/// Convenience wrapper over a uniform [`Instance`].
pub fn steal_from_instance(inst: &Instance, cfg: &SimConfig, enabled: bool) -> StealReport {
    let n = inst.tasks_per_proc() as usize;
    let nodes: Vec<Vec<f64>> = inst.weights().iter().map(|&w| vec![w; n]).collect();
    simulate_work_stealing(&nodes, cfg, enabled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize, latency: f64) -> SimConfig {
        SimConfig {
            comp_threads: threads,
            comm_latency: latency,
            comm_cost_per_load: 0.0,
            iterations: 1,
        }
    }

    #[test]
    fn disabled_matches_static_lmax() {
        let inst = Instance::uniform(10, vec![1.0, 4.0, 2.0]).unwrap();
        let report = steal_from_instance(&inst, &cfg(1, 0.0), false);
        assert_eq!(report.steals, 0);
        assert!((report.makespan - inst.stats().l_max).abs() < 1e-9);
        for (e, l) in report.executed.iter().zip(inst.loads()) {
            assert!((e - l).abs() < 1e-9);
        }
    }

    #[test]
    fn free_stealing_approaches_perfect_balance() {
        let inst = Instance::uniform(10, vec![1.0, 4.0, 2.0]).unwrap();
        let report = steal_from_instance(&inst, &cfg(1, 0.0), true);
        assert!(report.steals > 0);
        let l_avg = inst.stats().l_avg;
        let w_max = 4.0;
        assert!(
            report.makespan <= l_avg + w_max + 1e-9,
            "free stealing is near-optimal: {} vs avg {}",
            report.makespan,
            l_avg
        );
        // Work is conserved.
        let total: f64 = report.executed.iter().sum();
        assert!((total - inst.loads().iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn steal_latency_erodes_the_benefit() {
        let inst = Instance::uniform(20, vec![1.0, 8.0]).unwrap();
        let free = steal_from_instance(&inst, &cfg(1, 0.0), true);
        let pricey = steal_from_instance(&inst, &cfg(1, 2.0), true);
        assert!(pricey.makespan > free.makespan);
        // But even pricey stealing beats doing nothing here.
        let none = steal_from_instance(&inst, &cfg(1, 2.0), false);
        assert!(pricey.makespan < none.makespan);
    }

    #[test]
    fn multithreaded_nodes_share_local_queue() {
        let inst = Instance::uniform(8, vec![2.0]).unwrap();
        let report = steal_from_instance(&inst, &cfg(4, 0.0), false);
        // 8 tasks × 2.0 over 4 workers = 2 rounds.
        assert!((report.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_tasks_terminates() {
        let report = simulate_work_stealing(&[vec![], vec![]], &cfg(2, 0.0), true);
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.steals, 0);
    }
}
