//! Simulation reports.

use qlrb_telemetry::SimCounters;
use serde::{Deserialize, Serialize};

use crate::trace::{SpanKind, TraceSpan};

/// Per-node outcome of one BSP iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Time the node finished all its work (compute and communication).
    pub finish: f64,
    /// Idle time spent at the barrier waiting for the slowest node.
    pub wait: f64,
    /// Total compute-thread busy time (sum of executed task loads).
    pub busy: f64,
    /// Communication-thread busy time (iteration 0 only).
    pub comm_busy: f64,
    /// `busy / (makespan · comp_threads)`.
    pub utilization: f64,
}

/// One BSP iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Barrier time: the slowest node's finish.
    pub makespan: f64,
    /// Per-node details.
    pub nodes: Vec<NodeReport>,
}

impl IterationReport {
    /// Total wait time across nodes — the cost of imbalance this iteration.
    pub fn total_wait(&self) -> f64 {
        self.nodes.iter().map(|n| n.wait).sum()
    }

    /// Mean compute utilization across nodes.
    pub fn mean_utilization(&self) -> f64 {
        self.nodes.iter().map(|n| n.utilization).sum::<f64>() / self.nodes.len() as f64
    }
}

/// A whole simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-iteration reports.
    pub iterations: Vec<IterationReport>,
    /// Sum of iteration makespans.
    pub total_makespan: f64,
    /// Span trace of iteration 0 (compute, send/recv, wait).
    pub trace: Vec<TraceSpan>,
}

impl SimReport {
    /// Achieved speedup of this run relative to a baseline run.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.total_makespan > 0.0 {
            baseline.total_makespan / self.total_makespan
        } else {
            1.0
        }
    }

    /// Runtime counters for the telemetry manifest: migration traffic from
    /// the iteration-0 span trace (the only iteration that migrates) plus
    /// barrier-wait and communication-thread totals over all iterations.
    pub fn counters(&self) -> SimCounters {
        let sent = self
            .trace
            .iter()
            .filter(|s| s.kind == SpanKind::Send)
            .count();
        let recv = self
            .trace
            .iter()
            .filter(|s| s.kind == SpanKind::Recv)
            .count();
        let mut wait_total = 0.0;
        let mut wait_max = 0.0f64;
        let mut comm_busy = 0.0;
        for it in &self.iterations {
            wait_total += it.total_wait();
            for node in &it.nodes {
                wait_max = wait_max.max(node.wait);
                comm_busy += node.comm_busy;
            }
        }
        SimCounters {
            iterations: self.iterations.len(),
            migration_messages: sent,
            recv_messages: recv,
            barrier_wait_total: wait_total,
            barrier_wait_max: wait_max,
            comm_busy_total: comm_busy,
            total_makespan: self.total_makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespans: &[f64]) -> SimReport {
        SimReport {
            iterations: makespans
                .iter()
                .map(|&m| IterationReport {
                    makespan: m,
                    nodes: vec![NodeReport {
                        finish: m,
                        wait: 0.0,
                        busy: m,
                        comm_busy: 0.0,
                        utilization: 1.0,
                    }],
                })
                .collect(),
            total_makespan: makespans.iter().sum(),
            trace: vec![],
        }
    }

    #[test]
    fn speedup_compares_total_makespans() {
        let base = report(&[10.0, 10.0]);
        let fast = report(&[5.0, 5.0]);
        assert_eq!(fast.speedup_over(&base), 2.0);
        assert_eq!(base.speedup_over(&base), 1.0);
    }

    #[test]
    fn counters_tally_messages_and_waits() {
        let mut rep = report(&[10.0, 8.0]);
        rep.iterations[0].nodes[0].wait = 3.0;
        rep.iterations[0].nodes[0].comm_busy = 1.5;
        rep.iterations[1].nodes[0].wait = 1.0;
        rep.trace = vec![
            TraceSpan {
                node: 0,
                thread: usize::MAX,
                start: 0.0,
                end: 1.0,
                kind: SpanKind::Send,
            },
            TraceSpan {
                node: 1,
                thread: usize::MAX,
                start: 0.0,
                end: 1.0,
                kind: SpanKind::Recv,
            },
            TraceSpan {
                node: 1,
                thread: 0,
                start: 1.0,
                end: 9.0,
                kind: SpanKind::Compute,
            },
        ];
        let c = rep.counters();
        assert_eq!(c.iterations, 2);
        assert_eq!(c.migration_messages, 1);
        assert_eq!(c.recv_messages, 1);
        assert_eq!(c.barrier_wait_total, 4.0);
        assert_eq!(c.barrier_wait_max, 3.0);
        assert_eq!(c.comm_busy_total, 1.5);
        assert_eq!(c.total_makespan, 18.0);
    }

    #[test]
    fn iteration_aggregates() {
        let it = IterationReport {
            makespan: 10.0,
            nodes: vec![
                NodeReport {
                    finish: 10.0,
                    wait: 0.0,
                    busy: 10.0,
                    comm_busy: 0.0,
                    utilization: 1.0,
                },
                NodeReport {
                    finish: 6.0,
                    wait: 4.0,
                    busy: 6.0,
                    comm_busy: 0.0,
                    utilization: 0.6,
                },
            ],
        };
        assert_eq!(it.total_wait(), 4.0);
        assert!((it.mean_utilization() - 0.8).abs() < 1e-12);
    }
}
