//! Execution traces and ASCII Gantt rendering.

use serde::{Deserialize, Serialize};

/// What a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A task executing on a compute thread; payload = task load.
    Compute,
    /// The communication thread sending a migrated task.
    Send,
    /// The communication thread receiving a migrated task.
    Recv,
    /// Idle time between a node's local finish and the global barrier.
    Wait,
}

/// One span of activity on one thread of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Node index.
    pub node: usize,
    /// Thread index within the node; the communication thread is
    /// `usize::MAX`.
    pub thread: usize,
    /// Span start time.
    pub start: f64,
    /// Span end time.
    pub end: f64,
    /// Activity kind.
    pub kind: SpanKind,
}

impl TraceSpan {
    /// Span length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Renders node-level activity as an ASCII Gantt chart, one row per node:
/// `#` compute, `~` communication, `.` idle/wait. Rows are scaled to
/// `width` columns over `[0, horizon]`.
#[allow(clippy::needless_range_loop)] // indexed loops here touch several parallel arrays
pub fn render_gantt(spans: &[TraceSpan], num_nodes: usize, width: usize) -> String {
    let horizon = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    let width = width.max(10);
    let mut rows = vec![vec![b'.'; width]; num_nodes];
    if horizon > 0.0 {
        for s in spans {
            let glyph = match s.kind {
                SpanKind::Compute => b'#',
                SpanKind::Send | SpanKind::Recv => b'~',
                SpanKind::Wait => b'.',
            };
            if glyph == b'.' {
                continue;
            }
            let a = ((s.start / horizon) * width as f64).floor() as usize;
            let b = ((s.end / horizon) * width as f64).ceil() as usize;
            for c in a..b.min(width) {
                // Compute wins over comm when both map to one cell.
                if rows[s.node][c] != b'#' {
                    rows[s.node][c] = glyph;
                }
            }
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("P{:<3}|", i + 1));
        out.push_str(std::str::from_utf8(row).expect("ascii")); // qlrb-lint: allow(no-unwrap)
        out.push_str("|\n");
    }
    out.push_str(&format!("     0{:>width$.3}\n", horizon, width = width + 3));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gantt_marks_compute_and_comm() {
        let spans = vec![
            TraceSpan {
                node: 0,
                thread: 0,
                start: 0.0,
                end: 5.0,
                kind: SpanKind::Compute,
            },
            TraceSpan {
                node: 1,
                thread: usize::MAX,
                start: 5.0,
                end: 10.0,
                kind: SpanKind::Send,
            },
        ];
        let g = render_gantt(&spans, 2, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].contains('#'));
        assert!(!lines[0].contains('~'));
        assert!(lines[1].contains('~'));
        // First half of node 0's row is compute, second half idle.
        assert!(lines[0].starts_with("P1  |##########"));
    }

    #[test]
    fn gantt_handles_empty_trace() {
        let g = render_gantt(&[], 2, 20);
        assert_eq!(g.lines().count(), 3);
    }

    #[test]
    fn duration_is_end_minus_start() {
        let s = TraceSpan {
            node: 0,
            thread: 0,
            start: 1.5,
            end: 4.0,
            kind: SpanKind::Compute,
        };
        assert!((s.duration() - 2.5).abs() < 1e-12);
    }
}
