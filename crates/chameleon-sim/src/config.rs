//! Simulator configuration.

use serde::{Deserialize, Serialize};

/// Cost model and topology of the simulated cluster.
///
/// Defaults approximate the paper's CoolMUC2 setting: 28-core Haswell nodes
/// (one core reserved for the Chameleon communication thread) on a
/// high-bandwidth fabric where migrating a task costs far less than
/// executing it, but is not free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Compute threads per node (excluding the communication thread).
    pub comp_threads: usize,
    /// Fixed per-message overhead of a task migration (same time unit as
    /// task loads).
    pub comm_latency: f64,
    /// Transfer cost proportional to the migrated task's load (stands in
    /// for payload-size / bandwidth; task data scales with its work).
    pub comm_cost_per_load: f64,
    /// BSP iterations to simulate. Migrations execute once, in the first
    /// iteration; later iterations run with the new task residency.
    pub iterations: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            comp_threads: 27,
            comm_latency: 0.01,
            comm_cost_per_load: 0.05,
            iterations: 1,
        }
    }
}

impl SimConfig {
    /// Single-worker configuration: node makespan equals the plain sum of
    /// its task loads, which is exactly the paper's analytic `L_i` model.
    /// Used to cross-check the simulator against `Instance::loads`.
    pub fn analytic() -> Self {
        Self {
            comp_threads: 1,
            comm_latency: 0.0,
            comm_cost_per_load: 0.0,
            iterations: 1,
        }
    }

    /// Transfer time of one task of the given load.
    pub fn transfer_cost(&self, load: f64) -> f64 {
        self.comm_latency + self.comm_cost_per_load * load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_combines_latency_and_volume() {
        let cfg = SimConfig {
            comm_latency: 2.0,
            comm_cost_per_load: 0.5,
            ..Default::default()
        };
        assert_eq!(cfg.transfer_cost(10.0), 7.0);
    }

    #[test]
    fn analytic_config_is_free_of_overheads() {
        let cfg = SimConfig::analytic();
        assert_eq!(cfg.transfer_cost(100.0), 0.0);
        assert_eq!(cfg.comp_threads, 1);
    }
}
