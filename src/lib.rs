#![forbid(unsafe_code)]
//! # qlrb — hybrid classical-quantum load rebalancing for HPC
//!
//! A Rust reproduction of *"Leveraging Hybrid Classical-Quantum Methods for
//! Efficient Load Rebalancing in HPC"* (SC 2024). This facade crate
//! re-exports the whole workspace so downstream users depend on one crate:
//!
//! * [`core`] — the Load Rebalancing Problem (LRP): instances, metrics,
//!   migration plans, the paper's `Q_CQM1`/`Q_CQM2` formulations, and the
//!   end-to-end hybrid solve workflow.
//! * [`classical`] — the baselines: Greedy (Graham LPT), Karmarkar–Karp
//!   multiway differencing, CKK, and ProactLB.
//! * [`model`] — quadratic models: QUBO/BQM, CQM, the bounded-coefficient
//!   encoding, penalty conversions.
//! * [`anneal`] — the solver substrate: simulated annealing, path-integral
//!   simulated *quantum* annealing, tabu search, and the hybrid CQM solver
//!   that stands in for D-Wave's Leap service.
//! * [`runtime`] — a discrete-event simulator of a Chameleon-style
//!   MPI+OpenMP bulk-synchronous task runtime, used to execute migration
//!   plans and measure achieved makespans.
//! * [`workloads`] — MxM kernel calibration and the paper's experiment
//!   groups; [`samoa`] — the AMR shallow-water mini-app standing in for
//!   sam(oa)².
//! * [`harness`] — the runners that regenerate every table and figure of the
//!   paper's evaluation section.
//! * [`server`] — rebalancing as a service: the long-running `qlrb serve`
//!   daemon (JSON-over-HTTP solve requests, bounded worker pool,
//!   compiled-model cache, admission control) and its load generator
//!   (see DESIGN.md §Service).
//! * [`telemetry`] — the observability layer: per-read solve traces, trace
//!   sinks, and the JSON run manifest (see DESIGN.md §Observability).
//! * [`analyze`] — static analysis for the quadratic models: the lint-rule
//!   catalogue behind `qlrb lint` and the solver's pre-solve model gate
//!   (see DESIGN.md §Static analysis).
//!
//! ## Quickstart
//!
//! ```
//! use qlrb::core::{Instance, Rebalancer};
//! use qlrb::classical::ProactLb;
//!
//! // 4 processes, 5 tasks each; per-process task weights as in the paper's
//! // Fig. 7 example (milliseconds).
//! let inst = Instance::uniform(5, vec![1.87, 1.97, 3.12, 2.81]).unwrap();
//! assert!(inst.stats().imbalance_ratio > 0.2);
//!
//! let plan = ProactLb::default().rebalance(&inst).unwrap();
//! let after = inst.stats_after(&plan.matrix);
//! assert!(after.imbalance_ratio < inst.stats().imbalance_ratio);
//! ```

pub use chameleon_sim as runtime;
pub use qlrb_analyze as analyze;
pub use qlrb_anneal as anneal;
pub use qlrb_classical as classical;
pub use qlrb_core as core;
pub use qlrb_harness as harness;
pub use qlrb_model as model;
pub use qlrb_server as server;
pub use qlrb_telemetry as telemetry;
pub use qlrb_workloads as workloads;
pub use samoa_mini as samoa;
