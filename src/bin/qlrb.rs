//! `qlrb` — command-line interface to the load-rebalancing library.
//!
//! Mirrors the paper artifact's script workflow (generate imbalance input →
//! run rebalancing methods → inspect/simulate the output) as one binary:
//!
//! ```text
//! qlrb generate --workload samoa-table5 --out input.csv
//! qlrb info --input input.csv
//! qlrb rebalance --input input.csv --method qcqm1 --k-frac 0.25 --out plan.csv
//! qlrb simulate --input input.csv --plan plan.csv --threads 4 --iterations 8
//! ```
//!
//! `rebalance` and `simulate` accept `--telemetry <FILE>` to write a JSON
//! run manifest (per-read solve records / simulator counters, see
//! DESIGN.md §Observability); `qlrb trace summarize --input <FILE>` prints
//! a human-readable digest of such a manifest.
//!
//! `qlrb lint` builds the `Q_CQM*` formulations for an input and runs the
//! model linter (DESIGN.md §Static analysis) without solving: exit 0 when
//! every rule passes (warnings allowed), exit 1 on error-severity findings.
//!
//! The determinism-audit surface (DESIGN.md §Determinism audit):
//! `qlrb trace diff <A> <B>` compares two manifests' solve traces and
//! localizes the first divergent read (exit 0 identical, 1 diverged);
//! `qlrb audit --input <FILE>` verifies every stored trace digest
//! recomputes from its own record (exit 0 clean, 1 failures).
//!
//! Argument parsing is hand-rolled (five subcommands, a handful of flags) to
//! keep the dependency set identical to the library's.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use qlrb::classical::{BranchAndBound, Greedy, GreedyRelabeled, KarmarkarKarp, ProactLb};
use qlrb::core::cqm::Variant;
use qlrb::core::io::{read_input_csv, read_output_csv, write_input_csv, write_output_csv};
use qlrb::core::{DecomposingRebalancer, Instance, QuantumRebalancer, Rebalancer};
use qlrb::runtime::{render_gantt, simulate, SimConfig, SimInput};
use qlrb::telemetry::{
    CaseTrace, ConfigSnapshot, MemorySink, MethodTrace, RunManifest, SimConfigSnapshot, TraceSink,
};

const USAGE: &str = "\
qlrb — hybrid classical-quantum load rebalancing for HPC

USAGE:
  qlrb generate  --workload <NAME> [--case <LABEL>] [--out <FILE>]
  qlrb info      --input <FILE>
  qlrb rebalance --input <FILE> --method <NAME> [--k <N> | --k-frac <F>]
                 [--seed <S>] [--early-stop] [--adaptive] [--batched]
                 [--decompose] [--fault-plan <FILE>] [--max-retries <N>]
                 [--read-deadline-proposals <N>]
                 [--backends <LIST>] [--speculate]
                 [--out <FILE>] [--telemetry <FILE>]
  qlrb serve     [--addr <HOST:PORT>] [--workers <N>] [--queue-capacity <N>]
                 [--cache-capacity <N>] [--max-reads <N>] [--max-sweeps <N>]
                 [--read-deadline-proposals <N>] [--retry-after-ms <N>]
  qlrb simulate  --input <FILE> --plan <FILE> [--threads <N>]
                 [--latency <F>] [--cost <F>] [--iterations <N>]
                 [--telemetry <FILE>]
  qlrb lint      --input <FILE> [--variant qcqm1|qcqm2|both]
                 [--k <N> | --k-frac <F>] [--json]
  qlrb trace summarize --input <FILE>
  qlrb trace diff <A.json> <B.json>
  qlrb audit     --input <FILE>

WORKLOADS:
  mxm-imbalance   the paper's Fig. 3 group (pass --case Imb.0 … Imb.4)
  mxm-nodes       Fig. 4 group (pass --case 4|8|16|32|64)
  mxm-nodes-large beyond-paper scaling group for the decomposition
                  frontend (pass --case 1024|2048|4096)
  mxm-tasks       Fig. 5 group (pass --case 8|16|…|2048)
  samoa           small oscillating-lake scenario
  samoa-table5    the paper's Table V configuration (32 nodes x 208 tasks)

METHODS:
  greedy | kk | proactlb | greedy-relabel | bnb | qcqm1 | qcqm2
  (qcqm* default to k = ProactLB's migration count unless --k/--k-frac)

SCHEDULING (qcqm* only):
  --early-stop   stop launching solver waves once the best feasible plan
                 plateaus (or presolve/a lower bound proves it optimal)
  --adaptive     bandit read re-allocation across SA/SQA/tabu plus elite
                 cross-seeding of later waves; deterministic per --seed
  --batched      batched bitset kernels: one CSR traversal drives up to 64
                 sampler states (lane-per-read SA/tabu, lane-per-replica
                 SQA). Deterministic per --seed but a different stream than
                 the default scalar path
  --decompose    multilevel decomposition frontend: coarsen the instance to
                 a solvable core, solve it with the unchanged portfolio,
                 then uncoarsen with per-level repair/refinement solves.
                 Lifts the monolithic size ceiling (without it, oversized
                 instances fail with a structured model-too-large error);
                 deterministic per --seed. Telemetry manifests gain a
                 per-level decomposition table (schema v7)

FAULT TOLERANCE (qcqm* only):
  --fault-plan    JSON fault schedule injected at the sampler submission
                  boundary (kinds: timeout|transient|crash|malformed; see
                  DESIGN.md §Fault tolerance). Deterministic per --seed.
  --max-retries   resubmissions per read after a backend failure
                  (default 2, exponential backoff on the proposal clock)
  --read-deadline-proposals
                  per-read deadline on the deterministic proposal clock:
                  retries whose backoff would exceed it are skipped (the
                  first attempt always runs). Must be >= 1; the builder
                  rejects 0 with a structured error

SERVE:
  `qlrb serve` runs the rebalancer as a long-lived daemon: JSON solve
  requests POSTed to /solve are validated through the same solver builder
  as `rebalance`, sharded across a bounded worker pool, and answered with
  the plan CSV plus solve evidence. Compiled formulations are cached per
  (formulation, instance shape) so repeat tenants skip the model build;
  when the bounded queue is full, requests are shed immediately with a
  structured 429-style reply (never a panic, never unbounded memory).
  GET /stats returns the counter snapshot, GET /health the liveness probe.
  Load-test it with the `qlrb-loadgen` binary (see README §Serve).

FEDERATION (qcqm* only):
  --backends      comma-separated pool of backend presets the portfolio
                  federates over: fast (latency 1, cost 1.0/read),
                  strong (latency 4, cost 3.0/read), qpu (latency 2,
                  cost 5.0/read, flaky class). Reads round-robin across
                  (sampler, backend) pairs, retries rotate to the next
                  member, and the manifest reports per-backend reads,
                  QPU time, and cost. With --fault-plan, every member
                  routes through the fault injector (plan entries may
                  key on \"backend\" to target one member).
  --speculate     race a duplicate of a straggling attempt on the next
                  pool member: first success wins, the loser is
                  cancelled and charged nothing. Requires --backends.

TELEMETRY:
  --telemetry writes a JSON run manifest next to the normal output:
  per-read solve records for rebalance (quantum methods only), message and
  barrier-wait counters for simulate. Inspect with `qlrb trace summarize`.

LINT:
  `qlrb lint` checks the CQM formulations a rebalance would solve against
  the model-lint rule catalogue (unreferenced variables, degenerate one-hot
  groups, penalty bounds, coefficient overflow, infeasible bounds, qubit
  accounting) without spending any solver time. --json emits the findings
  machine-readably.

DETERMINISM AUDIT:
  Every solve record carries a trace digest: a deterministic fingerprint
  of its per-read records (wall clocks excluded). `qlrb trace diff A B`
  compares two manifests and, on mismatch, names the first divergent read
  (wave, slot, sampler, backend, field) instead of a byte-level diff;
  exit 0 identical, 1 diverged. `qlrb audit --input FILE` re-derives every
  digest from its own record to catch stale or hand-edited manifests.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Splits `args` into a subcommand and `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{flag}'"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    if cmd == "trace" {
        return trace_cmd(&args[1..]);
    }
    // Boolean flags take no value; split them off before pair parsing.
    let bools = [
        "--json",
        "--early-stop",
        "--adaptive",
        "--batched",
        "--decompose",
        "--speculate",
    ];
    let json = args[1..].iter().any(|a| a == "--json");
    let sched = SchedulerFlags {
        early_stop: args[1..].iter().any(|a| a == "--early-stop"),
        adaptive: args[1..].iter().any(|a| a == "--adaptive"),
        batched: args[1..].iter().any(|a| a == "--batched"),
        decompose: args[1..].iter().any(|a| a == "--decompose"),
        speculate: args[1..].iter().any(|a| a == "--speculate"),
    };
    let rest: Vec<String> = args[1..]
        .iter()
        .filter(|a| !bools.contains(&a.as_str()))
        .cloned()
        .collect();
    let flags = parse_flags(&rest)?;
    match cmd.as_str() {
        "generate" => generate(&flags).map(|()| ExitCode::SUCCESS),
        "info" => info(&flags).map(|()| ExitCode::SUCCESS),
        "rebalance" => rebalance(&flags, sched).map(|()| ExitCode::SUCCESS),
        "serve" => serve_cmd(&flags).map(|()| ExitCode::SUCCESS),
        "simulate" => simulate_cmd(&flags).map(|()| ExitCode::SUCCESS),
        "lint" => lint_cmd(&flags, json),
        "audit" => audit_cmd(&flags),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("--{name} is required"))
}

fn load_instance(flags: &HashMap<String, String>) -> Result<Instance, String> {
    let path = required(flags, "input")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    read_input_csv(&text).map_err(|e| e.to_string())
}

fn generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let workload = required(flags, "workload")?;
    let case = flags.get("case").map(String::as_str);
    let inst = match workload {
        "mxm-imbalance" => {
            let label = case.unwrap_or("Imb.3");
            qlrb::workloads::imbalance_levels()
                .into_iter()
                .find(|(l, _)| l == label)
                .ok_or_else(|| format!("unknown case '{label}' (Imb.0 … Imb.4)"))?
                .1
        }
        "mxm-nodes" => {
            let m: usize = case.unwrap_or("8").parse().map_err(|_| "bad --case")?;
            qlrb::workloads::node_scaling()
                .into_iter()
                .find(|(nodes, _)| *nodes == m)
                .ok_or_else(|| format!("unknown node count {m} (4|8|16|32|64)"))?
                .1
        }
        "mxm-nodes-large" => {
            let m: usize = case.unwrap_or("1024").parse().map_err(|_| "bad --case")?;
            qlrb::workloads::node_scaling_large()
                .into_iter()
                .find(|(nodes, _)| *nodes == m)
                .ok_or_else(|| format!("unknown node count {m} (1024|2048|4096)"))?
                .1
        }
        "mxm-tasks" => {
            let n: u64 = case.unwrap_or("128").parse().map_err(|_| "bad --case")?;
            qlrb::workloads::task_scaling()
                .into_iter()
                .find(|(tasks, _)| *tasks == n)
                .ok_or_else(|| format!("unknown task count {n} (8…2048, powers of two)"))?
                .1
        }
        "samoa" => qlrb::samoa::LakeScenario::small().to_instance(),
        "samoa-table5" => qlrb::samoa::scenario::table5_instance(),
        other => return Err(format!("unknown workload '{other}'")),
    };
    let csv = write_input_csv(&inst);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {} ({} processes x {} tasks, R_imb = {:.4})",
                path,
                inst.num_procs(),
                inst.tasks_per_proc(),
                inst.stats().imbalance_ratio
            );
        }
        None => print!("{csv}"),
    }
    Ok(())
}

fn info(flags: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let stats = inst.stats();
    println!("processes        : {}", inst.num_procs());
    println!("tasks per process: {}", inst.tasks_per_proc());
    println!("total tasks      : {}", inst.num_tasks());
    println!("L_max / L_avg    : {:.4} / {:.4}", stats.l_max, stats.l_avg);
    println!("imbalance ratio  : {:.5}", stats.imbalance_ratio);
    let (m, n) = (inst.num_procs() as u64, inst.tasks_per_proc());
    println!(
        "logical qubits   : Q_CQM1 = {}, Q_CQM2 = {}",
        qlrb::core::cqm::logical_qubits(Variant::Reduced, m, n),
        qlrb::core::cqm::logical_qubits(Variant::Full, m, n),
    );
    Ok(())
}

/// The `--early-stop` / `--adaptive` / `--batched` / `--speculate` solver
/// switches of `rebalance`.
#[derive(Debug, Clone, Copy, Default)]
struct SchedulerFlags {
    early_stop: bool,
    adaptive: bool,
    batched: bool,
    decompose: bool,
    speculate: bool,
}

/// Builds the `--backends` pool from a comma-separated list of preset names.
/// Each preset fixes a [`qlrb::anneal::BackendProfile`]; with `--fault-plan`
/// every member routes through the deterministic fault injector (plan entries
/// may key on `"backend"` to target one member), otherwise members submit
/// in-process. Duplicate names are rejected later by the solver builder.
fn backend_pool(
    spec: &str,
    fault_plan: Option<&qlrb::anneal::FaultPlan>,
) -> Result<qlrb::anneal::BackendPool, String> {
    use qlrb::anneal::{
        Backend, BackendId, BackendPool, BackendProfile, FaultInjectingBackend, InProcessBackend,
        ProfiledBackend, ReliabilityClass,
    };
    let mut members: Vec<Arc<dyn Backend>> = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let profile = match name {
            "fast" => BackendProfile::default(),
            "strong" => BackendProfile {
                latency_per_proposal: 4,
                cost_per_read: 3.0,
                reliability: ReliabilityClass::Reliable,
                deadline_proposals: None,
            },
            "qpu" => BackendProfile {
                latency_per_proposal: 2,
                cost_per_read: 5.0,
                reliability: ReliabilityClass::Flaky,
                deadline_proposals: None,
            },
            other => {
                return Err(format!(
                    "unknown backend preset '{other}' (fast|strong|qpu)"
                ))
            }
        };
        let inner: Arc<dyn Backend> = match fault_plan {
            Some(plan) => Arc::new(FaultInjectingBackend::new(plan.clone())),
            None => Arc::new(InProcessBackend),
        };
        members.push(Arc::new(ProfiledBackend::new(
            BackendId::new(name),
            profile,
            inner,
        )));
    }
    if members.is_empty() {
        return Err("--backends needs at least one preset (fast|strong|qpu)".into());
    }
    Ok(BackendPool::new(members))
}

fn rebalance(flags: &HashMap<String, String>, sched: SchedulerFlags) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let method_name = required(flags, "method")?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(2024);
    let k = match (flags.get("k"), flags.get("k-frac")) {
        (Some(k), _) => Some(k.parse::<u64>().map_err(|_| "bad --k")?),
        (None, Some(f)) => {
            let frac: f64 = f.parse().map_err(|_| "bad --k-frac")?;
            Some((inst.num_tasks() as f64 * frac).round() as u64)
        }
        (None, None) => None,
    };

    // Telemetry: quantum solves record per-read traces into this sink; the
    // manifest is assembled after the solve. Classical methods have no
    // solver loop to trace, so the flag is rejected for them up front.
    let telemetry = flags.get("telemetry").cloned();
    let sink = telemetry.as_ref().map(|_| Arc::new(MemorySink::new()));
    let mut solver_config = None;

    // Fault tolerance: a deterministic fault schedule for the sampler
    // backend, plus the per-read retry budget. Hybrid-only, like telemetry.
    let fault_plan = flags
        .get("fault-plan")
        .map(|path| -> Result<qlrb::anneal::FaultPlan, String> {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            qlrb::anneal::FaultPlan::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
        })
        .transpose()?;
    let max_retries = flags
        .get("max-retries")
        .map(|s| s.parse::<u32>().map_err(|_| "bad --max-retries"))
        .transpose()?;
    // Parsed here, validated by the solver builder: 0 is a contradiction
    // (every retry would be skipped) and comes back as its structured
    // build error rather than being silently clamped.
    let read_deadline = flags
        .get("read-deadline-proposals")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| "bad --read-deadline-proposals")
        })
        .transpose()?;

    // Federation: a heterogeneous backend pool plus the speculative-dispatch
    // switch. --speculate without a pool would silently be a no-op (there is
    // no "next member" to race), so require --backends alongside it.
    let backends_spec = flags.get("backends").cloned();
    if sched.speculate && backends_spec.is_none() {
        return Err(
            "--speculate races stragglers across a backend pool; pass --backends too".into(),
        );
    }

    let quantum = |variant: Variant,
                   solver_config: &mut Option<qlrb::telemetry::SolverConfig>|
     -> Result<Box<dyn Rebalancer>, String> {
        let k = match k {
            Some(k) => k,
            None => ProactLb
                .rebalance(&inst)
                .map_err(|e| e.to_string())?
                .matrix
                .num_migrated(),
        };
        let mut q = QuantumRebalancer::new(variant, k);
        let mut builder = q
            .solver
            .to_builder()
            .seed(seed)
            .early_stop(sched.early_stop)
            .adaptive(sched.adaptive)
            .batched(sched.batched)
            .decompose(sched.decompose);
        if let Some(sink) = &sink {
            builder = builder.sink(Arc::clone(sink) as Arc<dyn TraceSink>);
        }
        match &backends_spec {
            Some(spec) => {
                // The pool subsumes the fault-plan shim: with a plan, every
                // member wraps the injector, so don't also call fault_plan()
                // (it would collapse the pool back to one member).
                builder = builder
                    .backends(backend_pool(spec, fault_plan.as_ref())?)
                    .speculate(sched.speculate);
            }
            None => {
                if let Some(plan) = &fault_plan {
                    builder = builder.fault_plan(plan.clone());
                }
            }
        }
        if let Some(retries) = max_retries {
            builder = builder.max_retries(retries);
        }
        if let Some(deadline) = read_deadline {
            builder = builder.read_deadline_proposals(deadline);
        }
        q.solver = builder.build().map_err(|e| e.to_string())?;
        *solver_config = Some(q.solver.config());
        if sched.decompose {
            // The multilevel frontend wraps the same solver configuration;
            // its merged solve record goes to the telemetry sink directly.
            let mut dr = DecomposingRebalancer::new(variant, q.k);
            dr.solver = q.solver;
            if let Some(sink) = &sink {
                dr.sink = Arc::clone(sink) as Arc<dyn TraceSink>;
            }
            return Ok(Box::new(dr));
        }
        Ok(Box::new(q))
    };
    let method: Box<dyn Rebalancer> = match method_name {
        "greedy" => Box::new(Greedy),
        "kk" => Box::new(KarmarkarKarp),
        "proactlb" => Box::new(ProactLb),
        "greedy-relabel" => Box::new(GreedyRelabeled),
        "bnb" => Box::new(BranchAndBound::default()),
        "qcqm1" => quantum(Variant::Reduced, &mut solver_config)?,
        "qcqm2" => quantum(Variant::Full, &mut solver_config)?,
        other => return Err(format!("unknown method '{other}'")),
    };
    if telemetry.is_some() && solver_config.is_none() {
        return Err(format!(
            "--telemetry traces the hybrid solver; method '{method_name}' is classical \
             (use qcqm1 or qcqm2)"
        ));
    }
    if (sched.early_stop || sched.adaptive || sched.batched || sched.decompose)
        && solver_config.is_none()
    {
        return Err(format!(
            "--early-stop/--adaptive/--batched/--decompose configure the hybrid solver; \
             method '{method_name}' is classical (use qcqm1 or qcqm2)"
        ));
    }
    if (fault_plan.is_some() || max_retries.is_some() || read_deadline.is_some())
        && solver_config.is_none()
    {
        return Err(format!(
            "--fault-plan/--max-retries/--read-deadline-proposals configure the hybrid \
             solver's sampler backend; method '{method_name}' is classical (use qcqm1 or qcqm2)"
        ));
    }
    if (backends_spec.is_some() || sched.speculate) && solver_config.is_none() {
        return Err(format!(
            "--backends/--speculate federate the hybrid solver's sampler backends; \
             method '{method_name}' is classical (use qcqm1 or qcqm2)"
        ));
    }

    let out = method.rebalance(&inst).map_err(|e| e.to_string())?;
    out.matrix.validate(&inst).map_err(|e| e.to_string())?;
    let after = inst.stats_after(&out.matrix);
    println!(
        "{}: R_imb {:.5} -> {:.5}, speedup {:.4}, migrated {} ({:.2}/proc), cpu {:?}{}",
        method.name(),
        inst.stats().imbalance_ratio,
        after.imbalance_ratio,
        inst.speedup(&out.matrix),
        out.matrix.num_migrated(),
        out.matrix.migrated_per_proc(),
        out.runtime,
        out.qpu_time
            .map(|q| format!(", qpu {q:?}"))
            .unwrap_or_default()
    );
    let csv = write_output_csv(&inst, &out.matrix);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{csv}"),
    }

    if let (Some(path), Some(sink)) = (&telemetry, &sink) {
        let solve = sink
            .take()
            .into_iter()
            .next()
            .ok_or("solver recorded no trace")?;
        let mut manifest = RunManifest::new(
            "qlrb rebalance",
            ConfigSnapshot {
                solver: solver_config,
                ..Default::default()
            },
        );
        // Record the worker-pool width the solver waves actually ran with.
        manifest.rayon_threads = qlrb::harness::rayon_threads();
        manifest.cases.push(CaseTrace {
            label: required(flags, "input")?.to_string(),
            methods: vec![MethodTrace {
                method: method.name(),
                solve,
            }],
            sim: None,
        });
        manifest.finalize();
        manifest.validate()?;
        std::fs::write(path, manifest.to_json_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote telemetry manifest {path}");
    }
    Ok(())
}

/// `qlrb serve` — the long-running rebalancing daemon (DESIGN.md §Service).
/// Binds, prints the resolved address, and blocks in the accept loop until
/// the process is killed.
fn serve_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let get_u = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|_| format!("bad --{name}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let get_u64 = |name: &str| -> Result<Option<u64>, String> {
        flags
            .get(name)
            .map(|s| s.parse::<u64>().map_err(|_| format!("bad --{name}")))
            .transpose()
    };
    let defaults = qlrb::server::ServerConfig::default();
    let cfg = qlrb::server::ServerConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7077".into()),
        workers: get_u("workers", defaults.workers)?,
        queue_capacity: get_u("queue-capacity", defaults.queue_capacity)?,
        cache_capacity: get_u("cache-capacity", defaults.cache_capacity)?,
        max_reads: get_u("max-reads", defaults.max_reads)?,
        max_sweeps: get_u("max-sweeps", defaults.max_sweeps)?,
        default_read_deadline_proposals: get_u64("read-deadline-proposals")?,
        retry_after_ms: get_u64("retry-after-ms")?.unwrap_or(defaults.retry_after_ms),
        ..defaults
    };
    // Fail fast on a misconfigured default instead of per-request: run the
    // tenant defaults through the same builder every solve will use, so
    // e.g. --read-deadline-proposals 0 dies here with the structured
    // builder error.
    qlrb::anneal::hybrid::HybridCqmSolver::builder()
        .num_reads(cfg.default_num_reads.clamp(1, cfg.max_reads.max(1)))
        .sweeps(cfg.default_sweeps.clamp(1, cfg.max_sweeps.max(1)))
        .read_deadline_proposals(cfg.default_read_deadline_proposals)
        .build()
        .map_err(|e| e.to_string())?;

    let server = qlrb::server::Server::start(cfg).map_err(|e| e.to_string())?;
    let c = server.config();
    println!(
        "qlrb serve: listening on {} ({} worker(s), queue {} deep, cache {} model(s))",
        server.local_addr(),
        c.workers,
        c.queue_capacity,
        c.cache_capacity
    );
    println!("qlrb serve: POST /solve, GET /stats, GET /health; Ctrl-C to stop");
    server.join();
    Ok(())
}

/// `qlrb lint` — static analysis of the formulations a rebalance would
/// solve, with no solver time spent. Exit 0 when no rule reports an error
/// (warnings are printed but tolerated), exit 1 otherwise.
fn lint_cmd(flags: &HashMap<String, String>, json: bool) -> Result<ExitCode, String> {
    use qlrb::core::cqm::LrpCqm;
    use qlrb::model::penalty::{PenaltyConfig, PenaltyStyle};

    let inst = load_instance(flags)?;
    let k = match (flags.get("k"), flags.get("k-frac")) {
        (Some(k), _) => k.parse::<u64>().map_err(|_| "bad --k")?,
        (None, Some(f)) => {
            let frac: f64 = f.parse().map_err(|_| "bad --k-frac")?;
            (inst.num_tasks() as f64 * frac).round() as u64
        }
        // Same default as `rebalance`: ProactLB's migration count.
        (None, None) => ProactLb
            .rebalance(&inst)
            .map_err(|e| e.to_string())?
            .matrix
            .num_migrated(),
    };
    let variants: Vec<Variant> = match flags.get("variant").map(String::as_str) {
        None | Some("both") => vec![Variant::Reduced, Variant::Full],
        Some("qcqm1") => vec![Variant::Reduced],
        Some("qcqm2") => vec![Variant::Full],
        Some(other) => return Err(format!("unknown --variant '{other}' (qcqm1|qcqm2|both)")),
    };

    let mut any_errors = false;
    let mut json_entries: Vec<String> = Vec::new();
    for variant in variants {
        let lrp = LrpCqm::build(&inst, variant, k).map_err(|e| e.to_string())?;
        // The same auto-derived penalty a default solver would compile with.
        let penalty = PenaltyConfig::auto(&lrp.cqm, 2.0, PenaltyStyle::default());
        let report = qlrb::core::lint_lrp_with_penalty(&lrp, &penalty);
        any_errors |= report.has_errors();
        if json {
            json_entries.push(format!(
                "  \"{}\": {}",
                variant.label(),
                report.to_json().replace('\n', "\n  ")
            ));
        } else {
            println!(
                "{} (k = {k}, {} vars, {} constraints): {}",
                variant.label(),
                lrp.cqm.num_vars(),
                lrp.cqm.constraints.len(),
                report.render()
            );
        }
    }
    if json {
        println!("{{\n{}\n}}", json_entries.join(",\n"));
    }
    Ok(if any_errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn simulate_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    if flags.contains_key("fault-plan")
        || flags.contains_key("max-retries")
        || flags.contains_key("read-deadline-proposals")
    {
        return Err(
            "--fault-plan/--max-retries/--read-deadline-proposals configure the solver's \
             sampler backend; simulate replays a finished plan and has no backend (use them \
             with `qlrb rebalance --method qcqm1|qcqm2`)"
                .into(),
        );
    }
    if flags.contains_key("backends") {
        return Err(
            "--backends federates the solver's sampler backends; simulate replays a \
             finished plan and has no backend (use it with \
             `qlrb rebalance --method qcqm1|qcqm2`)"
                .into(),
        );
    }
    let inst = load_instance(flags)?;
    let plan_path = required(flags, "plan")?;
    let plan_text =
        std::fs::read_to_string(plan_path).map_err(|e| format!("reading {plan_path}: {e}"))?;
    let plan = read_output_csv(&plan_text).map_err(|e| e.to_string())?;
    plan.validate(&inst).map_err(|e| e.to_string())?;

    let get_f = |name: &str, default: f64| -> Result<f64, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|_| format!("bad --{name}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let get_u = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|_| format!("bad --{name}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let cfg = SimConfig {
        comp_threads: get_u("threads", 4)?,
        comm_latency: get_f("latency", 0.01)?,
        comm_cost_per_load: get_f("cost", 0.05)?,
        iterations: get_u("iterations", 1)?,
    };

    let baseline = simulate(&SimInput::from_instance(&inst), &cfg);
    let rebalanced = simulate(
        &SimInput::from_plan(&inst, &plan).map_err(|e| e.to_string())?,
        &cfg,
    );
    println!("== baseline ==");
    println!("{}", render_gantt(&baseline.trace, inst.num_procs(), 60));
    println!("== rebalanced ({} migrations) ==", plan.num_migrated());
    println!("{}", render_gantt(&rebalanced.trace, inst.num_procs(), 60));
    println!(
        "analytic speedup = {:.4}, achieved speedup = {:.4} over {} iteration(s)",
        inst.speedup(&plan),
        rebalanced.speedup_over(&baseline),
        cfg.iterations
    );

    if let Some(path) = flags.get("telemetry") {
        let mut manifest = RunManifest::new(
            "qlrb simulate",
            ConfigSnapshot {
                // (Simulator runs on one thread; rayon_threads keeps its
                // availability-derived default here.)
                sim: Some(SimConfigSnapshot {
                    comp_threads: cfg.comp_threads,
                    comm_latency: cfg.comm_latency,
                    comm_cost_per_load: cfg.comm_cost_per_load,
                    iterations: cfg.iterations,
                }),
                ..Default::default()
            },
        );
        for (label, report) in [("baseline", &baseline), ("rebalanced", &rebalanced)] {
            manifest.cases.push(CaseTrace {
                label: label.to_string(),
                methods: vec![],
                sim: Some(report.counters()),
            });
        }
        manifest.finalize();
        manifest.validate()?;
        std::fs::write(path, manifest.to_json_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote telemetry manifest {path}");
    }
    Ok(())
}

/// Reads and parses one telemetry manifest.
fn load_manifest(path: &str) -> Result<RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    RunManifest::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// `qlrb trace summarize --input <FILE>` — digest a telemetry manifest.
/// `qlrb trace diff <A> <B>` — localize the first divergent read between
/// two manifests of the same configuration (exit 0 identical, 1 diverged).
fn trace_cmd(args: &[String]) -> Result<ExitCode, String> {
    let Some(action) = args.first() else {
        return Err("trace needs an action (summarize | diff)".into());
    };
    match action.as_str() {
        "summarize" => {
            let flags = parse_flags(&args[1..])?;
            let path = required(&flags, "input")?;
            let manifest = load_manifest(path)?;
            manifest.validate()?;
            print!("{}", manifest.summarize());
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            // Two positional manifest paths; deliberately not validated
            // first, so stale digests and pre-v6 manifests still diff
            // (the field walk does not need the stored digest).
            let paths: Vec<&String> = args[1..].iter().collect();
            let [a_path, b_path] = paths.as_slice() else {
                return Err("trace diff needs exactly two manifest paths".into());
            };
            let a = load_manifest(a_path)?;
            let b = load_manifest(b_path)?;
            let diff = qlrb::analyze::diff_manifests(&a, &b);
            println!("{}", diff.render());
            Ok(if diff.is_identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        other => Err(format!("unknown trace action '{other}' (summarize | diff)")),
    }
}

/// `qlrb audit --input <FILE>` — verify every stored trace digest
/// recomputes from its own solve record. Exit 0 clean, 1 on any stale,
/// hand-edited, or missing digest.
fn audit_cmd(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let path = required(flags, "input")?;
    let manifest = load_manifest(path)?;
    match qlrb::analyze::audit_manifest(&manifest) {
        Ok(summary) => {
            println!(
                "audit OK: {} case(s), {} solve(s), {} read(s) — every trace digest recomputes",
                summary.cases, summary.solves, summary.reads
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("audit: {e}");
            }
            eprintln!("audit: {} failure(s)", errors.len());
            Ok(ExitCode::FAILURE)
        }
    }
}
